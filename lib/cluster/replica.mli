(** WAL-shipping read replica of a shard primary.

    A replica owns a {!Store.t} and a {!Mope_net.Client} to the primary.
    {!sync} pulls [Wal_since] chunks and applies the raw records
    ({!Store.apply_record}) until the cursor reaches the primary's WAL
    end — the catch-up protocol after a (re)connect — and records the
    remaining byte lag in the per-shard gauge
    [mope_cluster_replica_lag_bytes{shard="i"}]. If the primary answers
    [resync] (its WAL was truncated under the cursor, e.g. by a
    checkpoint), the replica drops its database and replays the log from
    the head; cluster primaries keep their full history in the WAL, so a
    head replay rebuilds the complete slice.

    With [wal_path] the replica's store logs every applied record
    {e verbatim}, which makes its WAL byte-identical to a prefix of the
    primary's. That identity is what failover leans on: when the
    supervisor promotes this replica, (a) the dead primary's WAL offsets
    are valid cursors into the promoted store's log, so a final drain can
    start exactly where the replica stopped, and (b) the {e other}
    replicas' cursors stay valid too — they just repoint ({!repoint}) at
    the new primary and keep pulling.

    Pull-based and synchronous by design: tests drive {!sync} explicitly,
    so replication stays deterministic under seeded chaos; a deployment
    calls it from a polling loop (the supervisor's sync loop). *)

type t

val create :
  shard:int ->
  ?host:string ->
  port:int ->
  ?timeout:float ->
  ?seed:int64 ->
  ?wrap:(Mope_net.Transport.t -> Mope_net.Transport.t) ->
  ?wal_path:string ->
  ?max_bytes:int ->
  unit ->
  t
(** Connect to the primary serving shard [shard] on [host]:[port] (host
    defaults to ["127.0.0.1"]). [wal_path] makes the store WAL-backed (see
    above); any existing file there is removed first — a replica rebuilds
    from the primary, never from its own log. [max_bytes] (default 1 MiB)
    caps each pulled chunk; [seed]/[wrap]/[timeout] are forwarded to
    {!Mope_net.Client.connect}. *)

val store : t -> Store.t
(** The replica's store — serve it with {!Store.handler} to make this a
    failover read target. *)

val sync : t -> int
(** Pull and apply chunks until the cursor reaches the primary's WAL end;
    returns the number of records applied (counting any full head replay
    after a [resync]). Updates the lag gauge — including after a [resync]
    rebuild, so the gauge never reports the torn-down slice's last value.
    Raises {!Mope_error.Error} if the primary is unreachable — the cursor
    is unchanged and the next {!sync} resumes where this one stopped. *)

val repoint : t -> port:int -> unit
(** Reconnect this replica to a new primary port after a promotion,
    keeping the WAL cursor: byte-identical replica WALs make the old
    offset a valid cursor into the promoted primary's log. The old
    connection is closed. *)

val mark_promoted : t -> unit
(** This replica just became the primary: zero its lag and reset the
    per-shard lag gauge, so the gauge does not keep reporting the lag the
    store had as a follower. *)

val lag_bytes : t -> int
(** Bytes of primary WAL not yet applied, as of the last {!sync} (or
    chunk). 0 when fully caught up. *)

val cursor : t -> int
(** The replica's WAL cursor (primary file offset); {!Mope_db.Wal.head_pos}
    before the first sync. *)

val close : t -> unit

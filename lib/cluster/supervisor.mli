(** Write-path fault tolerance for the sharded cluster: failure detection,
    replica promotion under fencing epochs, and bounded-staleness reads.

    The supervisor watches every shard leg over the wire protocol's [Ping]
    health check and keeps two loops going:

    - a {e probe loop}: each leg is probed with a hard per-probe timeout
      ({!Mope_net.Client.ping}'s probe mode); [miss_threshold] consecutive
      misses declare a leg dead. The probe interval is jittered from a
      seeded {!Mope_stats.Rng}, so a fleet of supervisors never probes in
      lockstep yet replays identically under a fixed seed — the same
      discipline as the client's backoff, and the reason the failure
      detector composes with seeded {!Mope_net.Chaos} tests.
    - a {e sync loop}: every replica is pulled ({!Replica.sync}) and its
      byte lag compared against [staleness_bound]; out-of-bound replicas
      are taken out of the coordinator's failover-read rotation
      ({!Coordinator.set_leg_eligible}) until they catch back up. The
      [mope_cluster_replica_lag_bytes{shard}] gauge tracks the shedding.

    When the current primary is declared dead, the supervisor promotes the
    {e most-caught-up in-bound} replica:

    + drain the dead primary's WAL {e file} into the candidate — replica
      WALs are byte-identical prefixes of the primary's, so the
      candidate's own append position is a valid cursor and the tail
      beyond it is exactly the writes never shipped; no acknowledged write
      is lost;
    + mint the next fencing epoch and {e persist it first}
      ({!Shard_map.set_epoch} + save when [map_path] is given) — the
      write-ahead rule that keeps epochs unique across supervisor
      restarts;
    + stamp the epoch into the candidate ({!Store.set_epoch}, which also
      logs an epoch mark for the remaining followers to adopt), reset its
      lag gauge, and switch the coordinator ({!Coordinator.promote});
    + mark the dead leg {e deposed}: the next probe that reaches it
      answers with [Fence], so a zombie that returns from a partition
      seals itself instead of double-applying late writes;
    + repoint the surviving replicas at the new primary — their cursors
      stay valid, again by WAL byte-identity.

    If {e no} replica is within the staleness bound, the shard degrades to
    read-only ({!Coordinator.set_read_only}): reads keep flowing from the
    primary-ordered legs, writes are shed with a retry-after hint, and
    every subsequent round re-attempts the promotion.

    Metrics: [mope_cluster_promotions_total{shard}],
    [mope_cluster_epoch{shard}], [mope_cluster_probe_failures_total{shard}].

    Deterministic by construction: {!tick} runs one sync round plus one
    probe round synchronously, so tests drive the whole failover state
    machine without a single background thread; {!start}/{!stop} run the
    same rounds from two threads for deployments. *)

type target = {
  port : int;  (** where the leg's store serves {!Store.handler} *)
  wal_path : string;  (** the leg's WAL file — read directly for drains *)
  replica : Replica.t option;
      (** the replication handle for replica legs; [None] for the
          configured primary (leg 0) *)
}

type config = {
  probe_interval : float;  (** base seconds between probe rounds (0.2) *)
  probe_jitter : float;
      (** fractional jitter applied to both loop intervals (0.5 — each
          wait is uniform in [±50%] of the base) *)
  probe_timeout : float;  (** per-probe budget in seconds (0.25) *)
  miss_threshold : int;
      (** consecutive missed probes before a leg is declared dead (3) *)
  staleness_bound : int;
      (** max replica byte lag tolerated for failover reads and
          promotion candidacy (64 KiB) *)
  sync_interval : float;  (** base seconds between sync rounds (0.1) *)
}

val default_config : config

type t

val create :
  ?host:string ->
  ?config:config ->
  ?seed:int64 ->
  ?wrap:(Mope_net.Transport.t -> Mope_net.Transport.t) ->
  ?map_path:string ->
  map:Shard_map.t ->
  coordinator:Coordinator.t ->
  targets:target list list ->
  unit ->
  t
(** One target list per shard, in the coordinator's leg order (configured
    primary first). [map] carries the persisted fencing epochs; with
    [map_path] every epoch bump is saved there before the promotion takes
    effect. [seed] fixes the probe-jitter schedule; [wrap] interposes on
    probe connections (e.g. {!Mope_net.Chaos.wrap}). *)

val tick : t -> unit
(** One synchronous sync round + probe round — the deterministic driver:
    probes every leg, updates lag and eligibility, and performs any
    promotion or degradation the new state calls for. *)

val probe_round : t -> unit
(** Just the probe half of {!tick}. *)

val sync_round : t -> unit
(** Just the sync half of {!tick}. *)

val primary_leg : t -> shard:int -> int
(** The leg the supervisor currently considers primary. *)

val start : t -> unit
(** Launch the two background loops (idempotent). *)

val stop : t -> unit
(** Stop the loops, join them, and close every probe connection.
    Idempotent; safe without {!start}. *)

module Metrics = Mope_obs.Metrics
module Trace = Mope_obs.Trace

(* Registered at module init; all no-ops until Metrics.set_enabled true. *)
let m_requests =
  Metrics.counter ~help:"Requests decoded (admitted or shed)"
    "mope_server_requests_total" ()

let m_errors =
  Metrics.counter ~help:"Requests answered with a Wire.Error"
    "mope_server_errors_total" ()

let m_shed =
  Metrics.counter ~help:"Requests shed by admission control"
    "mope_server_shed_total" ()

let m_connections =
  Metrics.counter ~help:"Connections accepted" "mope_server_connections_total"
    ()

let m_in_flight =
  Metrics.gauge ~help:"Requests currently inside the handler"
    "mope_server_in_flight" ()

let m_latency =
  Metrics.histogram ~help:"Request latency from decode start to response sent"
    "mope_server_request_seconds" ()

type config = {
  host : string;
  port : int;
  backlog : int;
  max_connections : int;
  max_in_flight : int;
  read_timeout : float;
  write_timeout : float;
  wrap : (Transport.t -> Transport.t) option;
}

let default_config =
  { host = "127.0.0.1";
    port = 0;
    backlog = 16;
    max_connections = 64;
    max_in_flight = 32;
    read_timeout = 30.0;
    write_timeout = 30.0;
    wrap = None }

type stats = {
  mutable connections_accepted : int;
  mutable requests : int;
  mutable errors : int;
  mutable shed : int;
  mutable total_latency : float;
  mutable max_latency : float;
}

type t = {
  config : config;
  handler : Wire.header -> Wire.request -> Wire.response;
  listen_fd : Unix.file_descr;
  bound_port : int;
  stats : stats;
  lock : Mutex.t;
  state_changed : Condition.t;  (* slot freed, connection drained, or stopping *)
  mutable active : Unix.file_descr list;  (* live connection sockets *)
  mutable workers : Thread.t list;
  mutable in_flight : int;  (* requests currently inside the handler *)
  mutable stopping : bool;
  mutable accept_thread : Thread.t option;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let port t = t.bound_port

let active_connections t = locked t (fun () -> List.length t.active)

let stats t =
  locked t (fun () ->
      { connections_accepted = t.stats.connections_accepted;
        requests = t.stats.requests;
        errors = t.stats.errors;
        shed = t.stats.shed;
        total_latency = t.stats.total_latency;
        max_latency = t.stats.max_latency })

let in_flight t = locked t (fun () -> t.in_flight)

(* ------------------------------------------------------------------ *)
(* Per-connection loop *)

let set_timeouts config fd =
  if config.read_timeout > 0.0 then
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO config.read_timeout;
  if config.write_timeout > 0.0 then
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO config.write_timeout

let record_request t ~started ~is_error =
  let elapsed = Unix.gettimeofday () -. started in
  Metrics.inc m_requests;
  if is_error then Metrics.inc m_errors;
  Metrics.observe m_latency elapsed;
  locked t (fun () ->
      t.stats.requests <- t.stats.requests + 1;
      if is_error then t.stats.errors <- t.stats.errors + 1;
      t.stats.total_latency <- t.stats.total_latency +. elapsed;
      if elapsed > t.stats.max_latency then t.stats.max_latency <- elapsed)

let respond t io ~started response =
  let is_error = match response with Wire.Error _ -> true | _ -> false in
  record_request t ~started ~is_error;
  Wire.write_frame_t io (Wire.encode_response response)

(* Admission control: reserve an in-flight slot, or shed with a structured
   [Overloaded] answer carrying a retry-after hint (twice the observed mean
   latency — long enough for a slot to drain in the common case). *)
let try_admit t =
  locked t (fun () ->
      if t.config.max_in_flight > 0 && t.in_flight >= t.config.max_in_flight
      then false
      else begin
        t.in_flight <- t.in_flight + 1;
        Metrics.gauge_add m_in_flight 1;
        true
      end)

let release t =
  Metrics.gauge_add m_in_flight (-1);
  locked t (fun () -> t.in_flight <- t.in_flight - 1)

let shed_response t =
  Metrics.inc m_shed;
  locked t (fun () ->
      t.stats.shed <- t.stats.shed + 1;
      let avg =
        if t.stats.requests = 0 then 0.0
        else t.stats.total_latency /. float_of_int t.stats.requests
      in
      Wire.Error
        { code = Wire.Overloaded;
          message =
            Printf.sprintf "server at capacity (%d requests in flight)"
              t.in_flight;
          query = None;
          retry_after = Some (Float.max 0.01 (2.0 *. avg)) })

(* Serve one client until it disconnects, times out, or desynchronizes. *)
let connection_loop t fd =
  let io =
    let base = Transport.of_fd fd in
    match t.config.wrap with None -> base | Some wrap -> wrap base
  in
  let bad_frame msg =
    Wire.Error
      { code = Wire.Bad_frame; message = msg; query = None; retry_after = None }
  in
  let rec loop () =
    match Wire.read_frame_t io with
    | exception End_of_file -> ()
    | exception Wire.Protocol_error msg ->
      (* The length prefix itself was bad: answer, then drop the link. *)
      respond t io ~started:(Unix.gettimeofday ()) (bad_frame msg)
    | payload ->
      let started = Unix.gettimeofday () in
      (match Wire.decode_request payload with
      | exception Wire.Protocol_error msg ->
        (* Framing held but the payload is garbage; the next frame boundary
           is still trustworthy, so keep the connection. *)
        respond t io ~started (bad_frame msg);
        loop ()
      | exception Wire.Version_mismatch _ ->
        (* A peer speaking another protocol version: answer with the one
           version-independent message and drop the link — every further
           frame would mismatch the same way. *)
        respond t io ~started
          (Wire.Unsupported_version { server_version = Wire.version })
      | header, request ->
        let decoded = Unix.gettimeofday () in
        (* The span tree for this request roots here: decode is recorded
           retroactively (it ran before the trace id was known), dispatch
           wraps the handler, and everything the handler touches — service,
           exec, OPE, storage — hangs off dispatch via the ambient
           context. *)
        Trace.run ~id:header.Wire.trace_id (fun () ->
            Trace.record_span "decode" ~dur_us:((decoded -. started) *. 1e6);
            let response =
              if not (try_admit t) then shed_response t
              else
                Fun.protect
                  ~finally:(fun () -> release t)
                  (fun () ->
                    Trace.with_span "dispatch" (fun () ->
                        try t.handler header request with
                        | Mope_error.Error e ->
                          Wire.Error
                            { code = Wire.Exec_failed; message = e.Mope_error.msg;
                              query = e.Mope_error.query; retry_after = None }
                        | exn ->
                          Wire.Error
                            { code = Wire.Internal;
                              message = Mope_error.describe_exn exn;
                              query = None; retry_after = None }))
            in
            respond t io ~started response);
        loop ())
  in
  (try loop () with
  | Unix.Unix_error ((EAGAIN | EWOULDBLOCK | ETIMEDOUT | ECONNRESET | EPIPE | EBADF), _, _) ->
    (* Read/write timeout, peer drop, chaos-injected disconnect, or
       shutdown under our feet. *)
    ()
  | Wire.Protocol_error _ | End_of_file -> ());
  io.Transport.close ();
  (try Unix.close fd with Unix.Unix_error _ -> ());
  let self = Thread.id (Thread.self ()) in
  locked t (fun () ->
      t.active <- List.filter (fun fd' -> fd' != fd) t.active;
      t.workers <- List.filter (fun th -> Thread.id th <> self) t.workers;
      Condition.broadcast t.state_changed)

(* ------------------------------------------------------------------ *)
(* Accept loop with backpressure *)

let accept_loop t =
  let rec go () =
    (* Backpressure: hold accepting while at the connection cap, so new
       clients queue in the kernel backlog instead of spawning threads. *)
    let stop =
      locked t (fun () ->
          while
            List.length t.active >= t.config.max_connections && not t.stopping
          do
            Condition.wait t.state_changed t.lock
          done;
          t.stopping)
    in
    if not stop then
      match Unix.accept ~cloexec:true t.listen_fd with
      | exception Unix.Unix_error ((EBADF | EINVAL), _, _) ->
        () (* listener closed by shutdown *)
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
        go () (* listener poll timeout: recheck the stop flag *)
      | exception Unix.Unix_error (_, _, _) -> go ()
      | fd, _peer ->
        set_timeouts t.config fd;
        Metrics.inc m_connections;
        let worker = Thread.create (connection_loop t) fd in
        locked t (fun () ->
            t.stats.connections_accepted <- t.stats.connections_accepted + 1;
            t.active <- fd :: t.active;
            t.workers <- worker :: t.workers);
        go ()
  in
  go ()

(* ------------------------------------------------------------------ *)

let start ?(config = default_config) ~handler () =
  (* Without this, a client disconnecting mid-response kills the process. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let addr =
    try Unix.inet_addr_of_string config.host
    with Failure _ ->
      Mope_error.failwithf "Server.start: invalid bind address %s" config.host
  in
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     (* accept(2) honours SO_RCVTIMEO, so the accept thread wakes up
        periodically to notice a shutdown even if closing the listener
        fails to interrupt it. *)
     Unix.setsockopt_float listen_fd Unix.SO_RCVTIMEO 0.2;
     Unix.bind listen_fd (Unix.ADDR_INET (addr, config.port));
     Unix.listen listen_fd config.backlog
   with Unix.Unix_error _ as e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     Mope_error.failwithf ~cause:e "Server.start: cannot listen on %s:%d"
       config.host config.port);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let t =
    { config; handler; listen_fd; bound_port;
      stats =
        { connections_accepted = 0; requests = 0; errors = 0; shed = 0;
          total_latency = 0.0; max_latency = 0.0 };
      lock = Mutex.create ();
      state_changed = Condition.create ();
      active = [];
      workers = [];
      in_flight = 0;
      stopping = false;
      accept_thread = None }
  in
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let shutdown t =
  let already =
    locked t (fun () ->
        let was = t.stopping in
        t.stopping <- true;
        Condition.broadcast t.state_changed;
        was)
  in
  if not already then begin
    (* Unblock the accept thread: shutdown(2) pops it out of accept(2) on
       Linux; the listener's SO_RCVTIMEO poll is the portable fallback. *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (* Unblock connection threads parked in read(2). *)
    let live = locked t (fun () -> t.active) in
    List.iter
      (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      live;
    let workers = locked t (fun () -> t.workers) in
    List.iter Thread.join workers;
    locked t (fun () -> t.workers <- [])
  end

module Metrics = Mope_obs.Metrics
module Trace = Mope_obs.Trace

(* Registered at module init; all no-ops until Metrics.set_enabled true. *)
let m_requests =
  Metrics.counter ~help:"Requests decoded (admitted or shed)"
    "mope_server_requests_total" ()

let m_errors =
  Metrics.counter ~help:"Requests answered with a Wire.Error or Unsupported_version"
    "mope_server_errors_total" ()

let m_shed =
  Metrics.counter ~help:"Requests shed by admission control"
    "mope_server_shed_total" ()

let m_connections =
  Metrics.counter ~help:"Connections accepted" "mope_server_connections_total"
    ()

let m_in_flight =
  Metrics.gauge ~help:"Requests currently inside the handler"
    "mope_server_in_flight" ()

let m_latency =
  Metrics.histogram
    ~help:"Request latency from decode start to response write completion"
    "mope_server_request_seconds" ()

type config = {
  host : string;
  port : int;
  backlog : int;
  max_connections : int;
  max_in_flight : int;
  read_timeout : float;
  write_timeout : float;
  wrap : (Transport.t -> Transport.t) option;
}

let default_config =
  { host = "127.0.0.1";
    port = 0;
    backlog = 16;
    max_connections = 64;
    max_in_flight = 32;
    read_timeout = 30.0;
    write_timeout = 30.0;
    wrap = None }

type stats = {
  mutable connections_accepted : int;
  mutable requests : int;
  mutable errors : int;
  mutable shed : int;
  mutable total_latency : float;
  mutable max_latency : float;
  mutable admitted : int;
  mutable admitted_latency : float;
}

(* One queued response: everything the connection's writer needs to frame
   it, and what the bookkeeping needs once it is on the wire. *)
type out_item = {
  o_req_id : int;  (* echoed v8 request id (0 = unassigned) *)
  o_started : float;  (* decode start, for the latency metric *)
  o_admitted : bool;  (* false for shed / codec-error answers *)
  o_response : Wire.response;
}

(* Per-connection state shared by its reader thread, its writer thread and
   the worker pool. The writer is the response sequencer: it is the only
   thread that ever writes to [io], so concurrently completing requests
   cannot interleave frames; it exits — and closes the socket — once the
   reader is done, no admitted request is still executing ([executing])
   and the queue is drained. *)
type conn = {
  fd : Unix.file_descr;
  io : Transport.t;
  c_lock : Mutex.t;
  c_state : Condition.t;
  out : out_item Queue.t;
  mutable executing : int;  (* admitted requests not yet queued on [out] *)
  mutable reader_done : bool;
  mutable write_failed : bool;
}

(* One admitted request travelling from a connection reader to the worker
   pool. *)
type job = {
  j_conn : conn;
  j_header : Wire.header;
  j_request : Wire.request;
  j_started : float;  (* frame read complete = decode start *)
  j_decoded : float;
}

type t = {
  config : config;
  handler : Wire.header -> Wire.request -> Wire.response;
  listen_fd : Unix.file_descr;
  bound_port : int;
  stats : stats;
  lock : Mutex.t;
  state_changed : Condition.t;  (* job queued, conn drained, or stopping *)
  jobs : job Queue.t;  (* admitted requests awaiting a pool worker *)
  mutable active : Unix.file_descr list;  (* live connection sockets *)
  mutable readers : Thread.t list;
  mutable writers : Thread.t list;
  mutable pool : Thread.t list;  (* the shared worker pool *)
  mutable in_flight : int;  (* admitted requests not yet handled *)
  mutable stopping : bool;
  mutable accept_thread : Thread.t option;
}

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let locked_conn c f =
  Mutex.lock c.c_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.c_lock) f

let port t = t.bound_port

let active_connections t = locked t (fun () -> List.length t.active)

let stats t =
  locked t (fun () ->
      { connections_accepted = t.stats.connections_accepted;
        requests = t.stats.requests;
        errors = t.stats.errors;
        shed = t.stats.shed;
        total_latency = t.stats.total_latency;
        max_latency = t.stats.max_latency;
        admitted = t.stats.admitted;
        admitted_latency = t.stats.admitted_latency })

let in_flight t = locked t (fun () -> t.in_flight)

(* ------------------------------------------------------------------ *)
(* Bookkeeping *)

let set_timeouts config fd =
  if config.read_timeout > 0.0 then
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO config.read_timeout;
  if config.write_timeout > 0.0 then
    Unix.setsockopt_float fd Unix.SO_SNDTIMEO config.write_timeout

(* Counters are recorded before the response frame goes out (so an
   in-process caller that just received its answer already sees the
   request counted), the latency after the write completes — the metric
   is "decode start to response write completion", and serialization +
   socket write is the part pipelining changes most. *)
let record_counts t ~is_error =
  Metrics.inc m_requests;
  if is_error then Metrics.inc m_errors;
  locked t (fun () ->
      t.stats.requests <- t.stats.requests + 1;
      if is_error then t.stats.errors <- t.stats.errors + 1)

let record_latency t ~started ~admitted =
  let elapsed = Unix.gettimeofday () -. started in
  Metrics.observe m_latency elapsed;
  locked t (fun () ->
      t.stats.total_latency <- t.stats.total_latency +. elapsed;
      if elapsed > t.stats.max_latency then t.stats.max_latency <- elapsed;
      if admitted then begin
        t.stats.admitted <- t.stats.admitted + 1;
        t.stats.admitted_latency <- t.stats.admitted_latency +. elapsed
      end)

(* Admission control: reserve an in-flight slot, or shed with a structured
   [Overloaded] answer carrying a retry-after hint. *)
let try_admit t =
  locked t (fun () ->
      if t.config.max_in_flight > 0 && t.in_flight >= t.config.max_in_flight
      then false
      else begin
        t.in_flight <- t.in_flight + 1;
        Metrics.gauge_add m_in_flight 1;
        true
      end)

let release t =
  Metrics.gauge_add m_in_flight (-1);
  locked t (fun () -> t.in_flight <- t.in_flight - 1)

(* The retry-after hint is twice the observed mean latency of *admitted*
   requests — long enough for a slot to drain in the common case. Shed
   answers themselves complete in microseconds, so folding them into the
   mean (as the pre-v8 server did via the all-requests mean) would drag
   the hint toward its floor under sustained overload and synchronize the
   retry stampede the hint exists to spread out. *)
let shed_response t =
  Metrics.inc m_shed;
  locked t (fun () ->
      t.stats.shed <- t.stats.shed + 1;
      let avg =
        if t.stats.admitted = 0 then 0.025
        else t.stats.admitted_latency /. float_of_int t.stats.admitted
      in
      Wire.Error
        { code = Wire.Overloaded;
          message =
            Printf.sprintf "server at capacity (%d requests in flight)"
              t.in_flight;
          query = None;
          retry_after = Some (Float.max 0.01 (2.0 *. avg)) })

(* ------------------------------------------------------------------ *)
(* Per-connection reader: read + decode frames, shed or enqueue *)

let enqueue_out conn item =
  locked_conn conn (fun () ->
      if item.o_admitted then conn.executing <- conn.executing - 1;
      Queue.push item conn.out;
      Condition.broadcast conn.c_state)

let reader_loop t conn =
  let bad_frame msg =
    Wire.Error
      { code = Wire.Bad_frame; message = msg; query = None; retry_after = None }
  in
  let answer ?(req_id = 0) ~started response =
    enqueue_out conn
      { o_req_id = req_id; o_started = started; o_admitted = false;
        o_response = response }
  in
  let rec loop () =
    match Wire.read_frame_t conn.io with
    | exception End_of_file -> ()
    | exception Wire.Protocol_error msg ->
      (* The length prefix itself was bad: answer, then drop the link. *)
      answer ~started:(Unix.gettimeofday ()) (bad_frame msg)
    | payload ->
      let started = Unix.gettimeofday () in
      (match Wire.decode_request payload with
      | exception Wire.Protocol_error msg ->
        (* Framing held but the payload is garbage; the next frame boundary
           is still trustworthy, so keep the connection. The answer carries
           request id 0 — the server cannot know which request it was. *)
        answer ~started (bad_frame msg);
        loop ()
      | exception Wire.Version_mismatch _ ->
        (* A peer speaking another protocol version: answer with the one
           version-independent message and drop the link — every further
           frame would mismatch the same way. *)
        answer ~started
          (Wire.Unsupported_version { server_version = Wire.version })
      | header, request ->
        let decoded = Unix.gettimeofday () in
        if try_admit t then begin
          locked_conn conn (fun () -> conn.executing <- conn.executing + 1);
          locked t (fun () ->
              Queue.push
                { j_conn = conn; j_header = header; j_request = request;
                  j_started = started; j_decoded = decoded }
                t.jobs;
              Condition.broadcast t.state_changed)
        end
        else
          answer ~req_id:header.Wire.req_id ~started (shed_response t);
        loop ())
  in
  (try loop () with
  | Unix.Unix_error ((EAGAIN | EWOULDBLOCK | ETIMEDOUT | ECONNRESET | EPIPE | EBADF), _, _) ->
    (* Read timeout, peer drop, chaos-injected disconnect, or shutdown
       under our feet. *)
    ()
  | Wire.Protocol_error _ | End_of_file -> ());
  locked_conn conn (fun () ->
      conn.reader_done <- true;
      Condition.broadcast conn.c_state);
  let self = Thread.id (Thread.self ()) in
  locked t (fun () ->
      t.readers <- List.filter (fun th -> Thread.id th <> self) t.readers)

(* ------------------------------------------------------------------ *)
(* Per-connection writer: the response sequencer *)

let writer_loop t conn =
  let next () =
    locked_conn conn (fun () ->
        while
          Queue.is_empty conn.out
          && not (conn.reader_done && conn.executing = 0)
        do
          Condition.wait conn.c_state conn.c_lock
        done;
        if Queue.is_empty conn.out then None else Some (Queue.pop conn.out))
  in
  let rec drain () =
    match next () with
    | None -> ()
    | Some item ->
      let is_error =
        match item.o_response with
        | Wire.Error _ | Wire.Unsupported_version _ -> true
        | _ -> false
      in
      record_counts t ~is_error;
      let failed = locked_conn conn (fun () -> conn.write_failed) in
      (if not failed then
         try
           Wire.write_frame_t conn.io
             (Wire.encode_response ~req_id:item.o_req_id item.o_response)
         with
         | Unix.Unix_error _ | Sys_error _ ->
           (* The peer is gone (or chaos cut the link): stop writing, and
              kick the reader out of its blocking read so the connection
              tears down instead of idling until the read timeout. *)
           locked_conn conn (fun () -> conn.write_failed <- true);
           (try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
            with Unix.Unix_error _ -> ()));
      record_latency t ~started:item.o_started ~admitted:item.o_admitted;
      drain ()
  in
  drain ();
  conn.io.Transport.close ();
  (try Unix.close conn.fd with Unix.Unix_error _ -> ());
  let self = Thread.id (Thread.self ()) in
  locked t (fun () ->
      t.active <- List.filter (fun fd' -> fd' != conn.fd) t.active;
      t.writers <- List.filter (fun th -> Thread.id th <> self) t.writers;
      Condition.broadcast t.state_changed)

(* ------------------------------------------------------------------ *)
(* The shared worker pool *)

let pool_worker t =
  let next () =
    locked t (fun () ->
        while Queue.is_empty t.jobs && not t.stopping do
          Condition.wait t.state_changed t.lock
        done;
        (* Drain queued work even when stopping: each queued job holds an
           [executing] count its connection writer is waiting on. *)
        if Queue.is_empty t.jobs then None else Some (Queue.pop t.jobs))
  in
  let rec go () =
    match next () with
    | None -> ()
    | Some job ->
      (* The span tree for this request roots here: decode is recorded
         retroactively (it ran on the reader thread, before the trace id
         was known), dispatch wraps the handler, and everything the
         handler touches — service, exec, OPE, storage — hangs off
         dispatch via the ambient context. *)
      let response =
        Trace.run ~id:job.j_header.Wire.trace_id (fun () ->
            Trace.record_span "decode"
              ~dur_us:((job.j_decoded -. job.j_started) *. 1e6);
            Trace.with_span "dispatch" (fun () ->
                try t.handler job.j_header job.j_request with
                | Mope_error.Error e ->
                  Wire.Error
                    { code = Wire.Exec_failed; message = e.Mope_error.msg;
                      query = e.Mope_error.query; retry_after = None }
                | exn ->
                  Wire.Error
                    { code = Wire.Internal;
                      message = Mope_error.describe_exn exn;
                      query = None; retry_after = None }))
      in
      release t;
      enqueue_out job.j_conn
        { o_req_id = job.j_header.Wire.req_id; o_started = job.j_started;
          o_admitted = true; o_response = response };
      go ()
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Accept loop with backpressure *)

let accept_loop t =
  let rec go () =
    (* Backpressure: hold accepting while at the connection cap, so new
       clients queue in the kernel backlog instead of spawning threads. *)
    let stop =
      locked t (fun () ->
          while
            List.length t.active >= t.config.max_connections && not t.stopping
          do
            Condition.wait t.state_changed t.lock
          done;
          t.stopping)
    in
    if not stop then
      match Unix.accept ~cloexec:true t.listen_fd with
      | exception Unix.Unix_error ((EBADF | EINVAL), _, _) ->
        () (* listener closed by shutdown *)
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
        go () (* listener poll timeout: recheck the stop flag *)
      | exception Unix.Unix_error (_, _, _) -> go ()
      | fd, _peer ->
        set_timeouts t.config fd;
        (* Pipelined responses go out as a train of small frames; without
           this, Nagle holds each one for the peer's delayed ACK and a
           depth-8 window serves slower than lockstep. *)
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        Metrics.inc m_connections;
        let io =
          let base = Transport.of_fd fd in
          match t.config.wrap with None -> base | Some wrap -> wrap base
        in
        let conn =
          { fd; io;
            c_lock = Mutex.create ();
            c_state = Condition.create ();
            out = Queue.create ();
            executing = 0;
            reader_done = false;
            write_failed = false }
        in
        let reader = Thread.create (reader_loop t) conn in
        let writer = Thread.create (writer_loop t) conn in
        locked t (fun () ->
            t.stats.connections_accepted <- t.stats.connections_accepted + 1;
            t.active <- fd :: t.active;
            t.readers <- reader :: t.readers;
            t.writers <- writer :: t.writers);
        go ()
  in
  go ()

(* ------------------------------------------------------------------ *)

let pool_size config = if config.max_in_flight > 0 then config.max_in_flight else 32

let start ?(config = default_config) ~handler () =
  (* Without this, a client disconnecting mid-response kills the process. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let addr =
    try Unix.inet_addr_of_string config.host
    with Failure _ ->
      Mope_error.failwithf "Server.start: invalid bind address %s" config.host
  in
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     (* accept(2) honours SO_RCVTIMEO, so the accept thread wakes up
        periodically to notice a shutdown even if closing the listener
        fails to interrupt it. *)
     Unix.setsockopt_float listen_fd Unix.SO_RCVTIMEO 0.2;
     Unix.bind listen_fd (Unix.ADDR_INET (addr, config.port));
     Unix.listen listen_fd config.backlog
   with Unix.Unix_error _ as e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     Mope_error.failwithf ~cause:e "Server.start: cannot listen on %s:%d"
       config.host config.port);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let t =
    { config; handler; listen_fd; bound_port;
      stats =
        { connections_accepted = 0; requests = 0; errors = 0; shed = 0;
          total_latency = 0.0; max_latency = 0.0;
          admitted = 0; admitted_latency = 0.0 };
      lock = Mutex.create ();
      state_changed = Condition.create ();
      jobs = Queue.create ();
      active = [];
      readers = [];
      writers = [];
      pool = [];
      in_flight = 0;
      stopping = false;
      accept_thread = None }
  in
  t.pool <- List.init (pool_size config) (fun _ -> Thread.create pool_worker t);
  t.accept_thread <- Some (Thread.create accept_loop t);
  t

let shutdown t =
  let already =
    locked t (fun () ->
        let was = t.stopping in
        t.stopping <- true;
        Condition.broadcast t.state_changed;
        was)
  in
  if not already then begin
    (* Unblock the accept thread: shutdown(2) pops it out of accept(2) on
       Linux; the listener's SO_RCVTIMEO poll is the portable fallback. *)
    (try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (* Unblock connection readers parked in read(2) (and writers wedged
       in write(2) against a stalled peer), then join in dependency
       order: readers stop producing jobs, the pool drains what remains,
       writers flush and close the sockets. *)
    let live = locked t (fun () -> t.active) in
    List.iter
      (fun fd -> try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
      live;
    let readers = locked t (fun () -> t.readers) in
    List.iter Thread.join readers;
    locked t (fun () -> Condition.broadcast t.state_changed);
    let pool = locked t (fun () -> t.pool) in
    List.iter Thread.join pool;
    let writers = locked t (fun () -> t.writers) in
    List.iter Thread.join writers;
    locked t (fun () ->
        t.readers <- [];
        t.writers <- [];
        t.pool <- [])
  end

open Mope_stats

type config = {
  partial_io : float;
  delay : float;
  max_delay : float;
  disconnect : float;
  corrupt : float;
}

let none =
  { partial_io = 0.0; delay = 0.0; max_delay = 0.0; disconnect = 0.0;
    corrupt = 0.0 }

let slow = { none with partial_io = 0.5; delay = 0.25; max_delay = 0.002 }

let hostile = { slow with disconnect = 0.02; corrupt = 0.02 }

let wrap ?(config = hostile) ~seed (io : Transport.t) =
  let rng = Rng.create seed in
  let dead = ref false in
  let hit p = p > 0.0 && Rng.float rng < p in
  let reset op =
    raise (Unix.Unix_error (Unix.ECONNRESET, op, "chaos injected disconnect"))
  in
  let pre op =
    if !dead then reset op;
    if hit config.delay then
      Thread.delay (Rng.float rng *. config.max_delay);
    if hit config.disconnect then begin
      dead := true;
      io.Transport.close ();
      reset op
    end
  in
  let chunk len =
    if len > 1 && hit config.partial_io then 1 + Rng.int rng len else len
  in
  (* Flip one random bit of [buf.[pos .. pos+len-1]] (len > 0). *)
  let flip_bit buf pos len =
    let i = pos + Rng.int rng len in
    let mask = 1 lsl Rng.int rng 8 in
    Bytes.set buf i (Char.chr (Char.code (Bytes.get buf i) lxor mask))
  in
  let read buf pos len =
    pre "read";
    let n = io.Transport.read buf pos (chunk len) in
    if n > 0 && hit config.corrupt then flip_bit buf pos n;
    n
  in
  let write buf pos len =
    pre "write";
    let n = chunk len in
    if n > 0 && hit config.corrupt then begin
      (* Corrupt a copy: the caller may retry the same buffer. *)
      let copy = Bytes.sub buf pos n in
      flip_bit copy 0 n;
      io.Transport.write copy 0 n
    end
    else io.Transport.write buf pos n
  in
  { Transport.read; write;
    close =
      (fun () ->
        dead := true;
        io.Transport.close ()) }

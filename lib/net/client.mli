(** Client driver for the networked proxy.

    A blocking, single-connection client (the driver-library shape of
    [ocaml-mssql] / [bs-mysql-driver]): connect once, issue queries, close.
    All failures — transport, timeout, protocol violations, and server-side
    [Wire.Error] responses — surface as {!Mope_error.Error} carrying the
    SQL being served and the underlying exception, never as bare [Failure]
    or raw [Unix.Unix_error].

    The driver is built to ride out a flaky or restarting proxy:

    - a broken connection is dropped and transparently re-established on
      the next request (dialing retries transient failures with
      {e jittered} exponential backoff, so a fleet of clients that lost
      the same proxy does not reconnect in lockstep);
    - idempotent requests (every read: [Ping], [Query], [Get_counters],
      [Get_stats], [Fetch], [Wal_since], plus the [Fence] control op) are
      retried up to [request_retries] times with the same jittered
      backoff; [Apply] mutates the remote store and is retried only when
      it carries a [request_id] — the store's dedup table then makes the
      retry exactly-once; without one an ambiguous failure surfaces as an
      error instead of a possible double-apply; an [Overloaded] answer
      waits the server's retry-after hint instead;
    - a circuit breaker counts consecutive transport failures: at
      [breaker_threshold] it {e opens} and every request fails fast
      (no dialing, no timeout burn) until [breaker_cooldown] has passed;
      the next request then {e half-opens} the breaker as a single probe —
      success closes it, failure re-opens it for another cooldown.

    The driver can also {e pipeline}: {!pipeline} and {!query_batch} keep
    up to [depth] requests in flight on the one connection, matching
    responses to requests by the v8 request id echoed in every response
    header — so a slow request does not head-of-line block the rest, and
    the server may complete them out of order. Retry, breaker and
    idempotency accounting stays per request: a mid-pipeline disconnect
    re-queues the idempotent in-flight requests (attempt budget
    permitting) and fails only those that cannot be safely resent.

    A [t] is not thread-safe: requests interleave frames on one socket, so
    share a client across threads only behind a lock (or open one per
    thread — the server is happy to oblige). *)

open Mope_db

type t

val connect :
  ?host:string ->
  port:int ->
  ?timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  ?request_retries:int ->
  ?breaker_threshold:int ->
  ?breaker_cooldown:float ->
  ?seed:int64 ->
  ?wrap:(Transport.t -> Transport.t) ->
  unit ->
  t
(** Connect, retrying transient failures (connection refused/reset, network
    or host unreachable, timeout) up to [retries] extra times with jittered
    exponential backoff. [host] defaults to ["127.0.0.1"]; [timeout]
    (default 10 s, 0 = none) bounds every socket operation including the
    connect itself; [backoff] (default 0.05 s) is the first retry delay and
    doubles per attempt, each delay jittered to 0.5–1.5× its nominal value.
    [request_retries] (default 2) bounds per-request retries of idempotent
    requests; [breaker_threshold] (default 5) consecutive transport
    failures open the circuit breaker for [breaker_cooldown] (default 5 s).
    [seed] fixes the jitter schedule (tests); by default it is derived from
    the clock and pid so concurrent clients de-synchronize. [wrap]
    interposes on the byte stream of every connection this client dials
    (e.g. {!Chaos.wrap}). Raises {!Mope_error.Error} once attempts are
    exhausted or on a non-transient failure. *)

val close : t -> unit
(** Idempotent. Subsequent calls on the client raise {!Mope_error.Error}. *)

val is_closed : t -> bool
(** [true] after {!close} — a closed client never reconnects. *)

val is_connected : t -> bool
(** [true] while a live connection is held. [false] does not mean dead:
    the next request redials unless the client is closed. *)

val breaker_state : t -> [ `Closed | `Open | `Half_open ]
(** Current circuit-breaker state; [`Half_open] means the cooldown has
    elapsed and the next request will probe the server. *)

val with_client :
  ?host:string -> port:int -> ?timeout:float -> ?retries:int ->
  ?backoff:float -> ?request_retries:int -> ?breaker_threshold:int ->
  ?breaker_cooldown:float -> ?seed:int64 ->
  ?wrap:(Transport.t -> Transport.t) -> (t -> 'a) -> 'a
(** Connect, run, close (also on exception). *)

val ping : ?timeout:float -> t -> unit
(** Round-trip a [Ping] frame — the wire protocol's health check.

    Without [timeout], the ping behaves like any other request (general
    socket timeout, retries, breaker). With [timeout] it becomes a
    {e failure-detector probe}: exactly one attempt (one dial if needed,
    no retry/backoff schedule), bounded by [timeout] both at the socket
    level and by a deadline checked between transport operations — so a
    peer that trickles bytes (or a chaos transport injecting delays)
    still cannot stretch the probe past its budget. A failed or late
    probe drops the connection (a late [Pong] left in the socket would
    desynchronize framing) and raises {!Mope_error.Error}. *)

val query :
  t ->
  ?trace_id:string ->
  sql:string ->
  date_column:string ->
  date_lo:Date.t ->
  date_hi:Date.t ->
  unit ->
  Exec.result
(** Execute one client statement through the remote proxy — the wire twin
    of {!Mope_system.Proxy.execute}. A server-side [Wire.Error] response is
    raised as {!Mope_error.Error} with the server's message, error code and
    query context.

    [trace_id] overrides the id sent in the v3 request header; by default
    one is minted from the client's RNG whenever tracing
    ({!Mope_obs.Trace}) is enabled in this process, and the empty id
    (= untraced) is sent otherwise. *)

val pipeline :
  t ->
  ?trace_id:string ->
  ?depth:int ->
  Wire.request list ->
  (Wire.response, Mope_error.t) result list
(** Issue a batch of requests on the one connection, keeping up to
    [depth] (default 8, min 1) in flight at once; returns one outcome per
    request, in request order, after the whole batch settles. Responses
    are matched by the v8 request id, so the server may complete them out
    of order without head-of-line blocking.

    Each request carries its own retry budget ([request_retries] if
    idempotent, none otherwise) and its own trace id ([trace_id], when
    given, overrides all of them). A transport failure mid-batch drops
    the connection, counts once against the breaker, re-queues in-flight
    idempotent requests with jittered backoff and fails the rest; an
    [Overloaded] answer re-queues just that request after the server's
    retry-after hint. Server [Wire.Error] responses are returned as
    [Ok (Error _)] payloads — mapping them to {!Mope_error.t} is the
    caller's (or {!query_batch}'s) job. Raises {!Mope_error.Error} only
    if the client is closed or the breaker is already open on entry. *)

val query_batch :
  t ->
  ?trace_id:string ->
  ?depth:int ->
  date_column:string ->
  queries:(string * Date.t * Date.t) list ->
  unit ->
  (Exec.result, Mope_error.t) result list
(** {!query} over {!pipeline}: execute a batch of client statements —
    [(sql, date_lo, date_hi)] triples ranging over [date_column] —
    keeping up to [depth] in flight, and return per-statement outcomes in
    order, server errors included as [Error] results rather than raised
    (one bad statement must not discard its siblings' rows). This is how
    the proxy ships a MakeQueries fake+real batch in one round trip. *)

val fetch : t -> ?trace_id:string -> ?epoch:int -> sql:string -> unit -> Exec.result
(** Run one SELECT directly against a cluster shard store
    ({!Mope_cluster.Store}) and return the raw — still encrypted — rows.
    The [Fetch] wire op; idempotent, so it retries like {!query}.
    [epoch] (default 0 = unfenced) is the caller's fencing epoch for the
    shard; a store whose epoch differs refuses with [Fenced]
    (see {!is_fenced}). *)

val fetch_batch :
  t ->
  ?trace_id:string ->
  ?depth:int ->
  ?epoch:int ->
  sqls:string list ->
  unit ->
  (Exec.result, Mope_error.t) result list
(** {!fetch} over {!pipeline}: run several shard SELECTs down the one
    connection with up to [depth] in flight, under one fencing [epoch],
    returning per-statement outcomes in order. The cluster coordinator
    uses this to ship a client query's whole fake+real batch plan to a
    shard in one round trip. *)

val apply :
  t -> ?trace_id:string -> ?epoch:int -> ?request_id:string -> sql:string ->
  unit -> int
(** Execute one mutating statement on a shard store and append it to the
    shard's WAL; returns the WAL end offset afterwards (0 if the store has
    no WAL). [epoch] fences as for {!fetch}. Without a [request_id] the
    request is not idempotent — never retried, so an ambiguous transport
    failure surfaces as an error instead of a possible double-apply. With
    a [request_id] (at most {!Wire.max_request_id} bytes) the store dedups
    repeats, so the request retries like a read and a cross-failover retry
    applies exactly once. *)

val fence : t -> ?trace_id:string -> epoch:int -> unit -> int
(** Seal a shard store at [epoch] (the [Fence] wire op): the store adopts
    the epoch and refuses all subsequent [Fetch]/[Apply] with [Fenced]
    until rebuilt — how the supervisor neutralizes a deposed primary that
    returns from a partition. [epoch = 0] only queries. Returns the
    store's resulting epoch. *)

val is_fenced : Mope_error.t -> bool
(** [true] when the error wraps a server [Fenced] refusal — the caller's
    (or the store's) fencing epoch is stale. Failover logic uses this to
    separate "refresh the epoch and re-route" from transport failure. *)

val wal_since :
  t -> ?trace_id:string -> from_pos:int -> max_bytes:int -> unit -> Wal.chunk
(** Pull one replication chunk from a shard primary (the [Wal_since] wire
    op): the WAL records from [from_pos] on, capped at [max_bytes] of
    payload. See {!Mope_db.Wal.since} for cursor semantics, including the
    [resync] signal after a checkpoint truncation. *)

val counters : t -> Wire.counters
(** The server's aggregate proxy counters. *)

val stats : t -> Wire.stats
(** The server's observability snapshot: both metric renderings plus its
    recent traces (the [Get_stats] wire op). *)

(** Progress of a tenant's online key rotation (see {!rotate}). *)
type rotation_status = {
  state : string;  (** ["serving"] or ["rotating"] *)
  generation : int;  (** key generation currently serving reads *)
  rows_moved : int;
  rows_total : int;
}

val open_session :
  t -> ?trace_id:string -> tenant:string -> secret:string -> unit -> string
(** Run the v7 session handshake against a multi-tenant service: request a
    challenge nonce for [tenant] ([Open_session]), answer it with the hex
    HMAC of the nonce under [secret] ([Authenticate]), and store the
    returned token — every subsequent request on this client carries it in
    the header. Returns the token. The secret itself never goes on the
    wire. Raises {!Mope_error.Error} on [Unknown_tenant] or [Auth_failed];
    the handshake is not retried as a whole (a half-done handshake's nonce
    is consumed), so redo {!open_session} after a failure. *)

val session : t -> string option
(** The session token sent with every request, if a handshake succeeded. *)

val clear_session : t -> unit
(** Forget the session token (subsequent requests go unauthenticated). *)

val rotate :
  t -> ?trace_id:string -> ?status_only:bool -> tenant:string -> unit ->
  rotation_status
(** Start an online key rotation for [tenant] (or, with
    [status_only = true], poll the one in progress — only the poll is
    retried on transport failure). Requires an authenticated session for
    that same tenant ({!open_session}); rotating anyone else's keys is
    refused with [Auth_failed]. *)

(** Client driver for the networked proxy.

    A blocking, single-connection client (the driver-library shape of
    [ocaml-mssql] / [bs-mysql-driver]): connect once, issue queries, close.
    All failures — transport, timeout, protocol violations, and server-side
    [Wire.Error] responses — surface as {!Mope_error.Error} carrying the
    SQL being served and the underlying exception, never as bare [Failure]
    or raw [Unix.Unix_error].

    A [t] is not thread-safe: requests interleave frames on one socket, so
    share a client across threads only behind a lock (or open one per
    thread — the server is happy to oblige). *)

open Mope_db

type t

val connect :
  ?host:string ->
  port:int ->
  ?timeout:float ->
  ?retries:int ->
  ?backoff:float ->
  unit ->
  t
(** Connect, retrying transient failures (connection refused/reset, network
    or host unreachable, timeout) up to [retries] extra times with
    exponential backoff. [host] defaults to ["127.0.0.1"]; [timeout]
    (default 10 s, 0 = none) bounds every socket operation including the
    connect itself; [backoff] (default 0.05 s) is the first retry delay and
    doubles per attempt. Raises {!Mope_error.Error} once attempts are
    exhausted or on a non-transient failure. *)

val close : t -> unit
(** Idempotent. Subsequent calls on the client raise {!Mope_error.Error}. *)

val is_closed : t -> bool

val with_client :
  ?host:string -> port:int -> ?timeout:float -> ?retries:int ->
  ?backoff:float -> (t -> 'a) -> 'a
(** Connect, run, close (also on exception). *)

val ping : t -> unit
(** Round-trip a [Ping] frame. *)

val query :
  t ->
  sql:string ->
  date_column:string ->
  date_lo:Date.t ->
  date_hi:Date.t ->
  Exec.result
(** Execute one client statement through the remote proxy — the wire twin
    of {!Mope_system.Proxy.execute}. A server-side [Wire.Error] response is
    raised as {!Mope_error.Error} with the server's message, error code and
    query context. *)

val counters : t -> Wire.counters
(** The server's aggregate proxy counters. *)

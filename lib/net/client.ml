type t = {
  fd : Unix.file_descr;
  host : string;
  port : int;
  timeout : float;
  mutable closed : bool;
}

let transient = function
  | Unix.Unix_error
      ( ( ECONNREFUSED | ECONNRESET | ECONNABORTED | ETIMEDOUT | EAGAIN
        | EWOULDBLOCK | EHOSTUNREACH | ENETUNREACH | EINTR | EPIPE ),
        _, _ ) ->
    true
  | _ -> false

let connect ?(host = "127.0.0.1") ~port ?(timeout = 10.0) ?(retries = 3)
    ?(backoff = 0.05) () =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> Mope_error.failwithf "Client.connect: invalid address %s" host
  in
  let attempt_once () =
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    try
      if timeout > 0.0 then begin
        (* SO_SNDTIMEO also bounds connect(2) on Linux. *)
        Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
        Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout
      end;
      Unix.setsockopt fd Unix.TCP_NODELAY true;
      Unix.connect fd (Unix.ADDR_INET (addr, port));
      fd
    with e ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise e
  in
  let rec attempt n delay =
    match attempt_once () with
    | fd -> fd
    | exception e when transient e && n < retries ->
      Thread.delay delay;
      attempt (n + 1) (delay *. 2.0)
    | exception e ->
      Mope_error.failwithf ~cause:e
        "Client.connect: %s:%d unreachable after %d attempt%s" host port (n + 1)
        (if n = 0 then "" else "s")
  in
  let fd = attempt 0 backoff in
  { fd; host; port; timeout; closed = false }

let is_closed t = t.closed

let close t =
  if not t.closed then begin
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let with_client ?host ~port ?timeout ?retries ?backoff f =
  let t = connect ?host ~port ?timeout ?retries ?backoff () in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

(* One request/response exchange. [query] is the SQL context attached to
   any error raised. *)
let rpc t ?query request =
  if t.closed then
    Mope_error.failwithf ?query "Client: connection to %s:%d is closed" t.host t.port;
  try
    Wire.write_frame t.fd (Wire.encode_request request);
    Wire.decode_response (Wire.read_frame t.fd)
  with
  | Wire.Protocol_error msg ->
    close t;
    Mope_error.failwithf ?query "Client: malformed frame from %s:%d: %s" t.host
      t.port msg
  | End_of_file ->
    close t;
    Mope_error.failwithf ?query "Client: %s:%d closed the connection" t.host t.port
  | Unix.Unix_error ((EAGAIN | EWOULDBLOCK | ETIMEDOUT), _, _) as e ->
    (* The stream lost a frame boundary: this connection is unusable. *)
    close t;
    Mope_error.failwithf ?query ~cause:e
      "Client: request to %s:%d timed out after %.3gs" t.host t.port t.timeout
  | Unix.Unix_error _ as e ->
    close t;
    Mope_error.failwithf ?query ~cause:e "Client: I/O error talking to %s:%d"
      t.host t.port

let check_error ?query = function
  | Wire.Error { code; message; query = server_query } ->
    let query = match server_query with Some _ -> server_query | None -> query in
    Mope_error.raise_error ?query
      (Printf.sprintf "server error (%s): %s" (Wire.error_code_to_string code)
         message)
  | resp -> resp

let ping t =
  match check_error (rpc t Wire.Ping) with
  | Wire.Pong -> ()
  | _ -> Mope_error.raise_error "Client.ping: unexpected response"

let query t ~sql ~date_column ~date_lo ~date_hi =
  let request = Wire.Query { sql; date_column; date_lo; date_hi } in
  match check_error ~query:sql (rpc t ~query:sql request) with
  | Wire.Rows result -> result
  | _ -> Mope_error.raise_error ~query:sql "Client.query: unexpected response"

let counters t =
  match check_error (rpc t Wire.Get_counters) with
  | Wire.Counters c -> c
  | _ -> Mope_error.raise_error "Client.counters: unexpected response"

open Mope_stats
module Metrics = Mope_obs.Metrics
module Trace = Mope_obs.Trace

(* Registered at module init; all no-ops until Metrics.set_enabled true. *)
let m_retries =
  Metrics.counter ~help:"Request retries (transport failures and overload)"
    "mope_client_retries_total" ()

let m_breaker_opens =
  Metrics.counter ~help:"Circuit-breaker transitions into open"
    "mope_client_breaker_open_total" ()

let m_breaker_state =
  Metrics.gauge ~help:"Circuit breaker: 0 closed, 1 open, 2 half-open"
    "mope_client_breaker_state" ()

type t = {
  host : string;
  port : int;
  addr : Unix.inet_addr;
  timeout : float;
  connect_retries : int;
  backoff : float;
  request_retries : int;
  breaker_threshold : int;
  breaker_cooldown : float;
  wrap : Transport.t -> Transport.t;
  rng : Rng.t;
  mutable conn : Transport.t option;
  mutable fd : Unix.file_descr option;  (* raw socket under [conn]'s wraps *)
  mutable closed : bool;
  mutable failures : int;     (* consecutive transport failures *)
  mutable open_until : float; (* 0 = breaker closed; else open/half-open *)
  mutable session : string;   (* token from Session_ok; "" = no session *)
  mutable next_id : int;      (* last v8 request id minted; ids start at 1 *)
}

type rotation_status = {
  state : string;
  generation : int;
  rows_moved : int;
  rows_total : int;
}

let transient = function
  | Unix.Unix_error
      ( ( ECONNREFUSED | ECONNRESET | ECONNABORTED | ETIMEDOUT | EAGAIN
        | EWOULDBLOCK | EHOSTUNREACH | ENETUNREACH | EINTR | EPIPE ),
        _, _ ) ->
    true
  | _ -> false

(* Uniform in [0.5·d, 1.5·d): staggers the retries of many clients that
   all lost the same proxy at the same moment. *)
let jittered t d = d *. (0.5 +. Rng.float t.rng)

(* ------------------------------------------------------------------ *)
(* Circuit breaker: closed -> open (after [breaker_threshold] consecutive
   transport failures) -> half-open (cooldown elapsed; one probe) ->
   closed on success / open again on failure. *)

let breaker_state t =
  if t.open_until = 0.0 then `Closed
  else if Unix.gettimeofday () < t.open_until then `Open
  else `Half_open

let record_success t =
  t.failures <- 0;
  t.open_until <- 0.0;
  Metrics.gauge_set m_breaker_state 0

let record_failure t =
  t.failures <- t.failures + 1;
  if t.failures >= t.breaker_threshold || t.open_until > 0.0 then begin
    (* Tripped, or a half-open probe failed: (re)open for a full cooldown. *)
    if t.open_until = 0.0 then Metrics.inc m_breaker_opens;
    t.open_until <- Unix.gettimeofday () +. t.breaker_cooldown;
    Metrics.gauge_set m_breaker_state 1
  end

(* ------------------------------------------------------------------ *)
(* Connecting *)

let dial ?timeout t =
  let timeout = match timeout with Some d -> d | None -> t.timeout in
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  try
    if timeout > 0.0 then begin
      (* SO_SNDTIMEO also bounds connect(2) on Linux. *)
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout
    end;
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    Unix.connect fd (Unix.ADDR_INET (t.addr, t.port));
    t.fd <- Some fd;
    t.wrap (Transport.of_fd fd)
  with e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e

(* Dial with jittered exponential backoff over transient failures. The
   breaker must see dial exhaustion: a dead server that refuses every
   connect is exactly the condition it exists for, and before v8 this
   raised without recording the failure — so a caller reconnecting
   through [rpc] burned the full dial-retry schedule on every request and
   the breaker never opened. *)
let establish t =
  let rec attempt n delay =
    match dial t with
    | io ->
      t.conn <- Some io;
      io
    | exception e when transient e && n < t.connect_retries ->
      Thread.delay (jittered t delay);
      attempt (n + 1) (delay *. 2.0)
    | exception e ->
      record_failure t;
      Mope_error.failwithf ~cause:e
        "Client.connect: %s:%d unreachable after %d attempt%s" t.host t.port
        (n + 1)
        (if n = 0 then "" else "s")
  in
  attempt 0 t.backoff

let drop_conn t =
  match t.conn with
  | None -> ()
  | Some io ->
    t.conn <- None;
    t.fd <- None;
    io.Transport.close ()

let connect ?(host = "127.0.0.1") ~port ?(timeout = 10.0) ?(retries = 3)
    ?(backoff = 0.05) ?(request_retries = 2) ?(breaker_threshold = 5)
    ?(breaker_cooldown = 5.0) ?seed ?(wrap = Fun.id) () =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> Mope_error.failwithf "Client.connect: invalid address %s" host
  in
  let seed =
    match seed with
    | Some s -> s
    | None ->
      (* Distinct per client so a reconnect stampede spreads out. *)
      Int64.logxor
        (Int64.of_float (Unix.gettimeofday () *. 1e6))
        (Int64.of_int (Unix.getpid ()))
  in
  let t =
    { host; port; addr; timeout;
      connect_retries = Int.max 0 retries;
      backoff;
      request_retries = Int.max 0 request_retries;
      breaker_threshold = Int.max 1 breaker_threshold;
      breaker_cooldown;
      wrap;
      rng = Rng.create seed;
      conn = None;
      fd = None;
      closed = false;
      failures = 0;
      open_until = 0.0;
      session = "";
      next_id = 0 }
  in
  ignore (establish t);
  t

let is_closed t = t.closed

let is_connected t = t.conn <> None && not t.closed

let close t =
  if not t.closed then begin
    t.closed <- true;
    drop_conn t
  end

let with_client ?host ~port ?timeout ?retries ?backoff ?request_retries
    ?breaker_threshold ?breaker_cooldown ?seed ?wrap f =
  let t =
    connect ?host ~port ?timeout ?retries ?backoff ?request_retries
      ?breaker_threshold ?breaker_cooldown ?seed ?wrap ()
  in
  Fun.protect ~finally:(fun () -> close t) (fun () -> f t)

(* Reads are safe to retry. [Apply] mutates the remote store, so a retry
   after an ambiguous failure (request sent, response lost) could apply
   the statement twice — unless it carries a request id, which the store
   dedups, making the retry exact-once. [Fence] only moves the epoch
   forward to the given value, so replaying it is a no-op. [Open_session]
   only mints a fresh challenge; [Authenticate] consumes its nonce on
   success, so a retry whose first answer was lost would fail auth —
   one shot, the caller redoes the whole handshake. [Rotate] starts a new
   rotation unless it is a pure status poll. *)
let idempotent = function
  | Wire.Ping | Wire.Query _ | Wire.Get_counters | Wire.Get_stats
  | Wire.Fetch _ | Wire.Wal_since _ | Wire.Fence _ | Wire.Open_session _ ->
    true
  | Wire.Apply { request_id; _ } -> request_id <> ""
  | Wire.Authenticate _ -> false
  | Wire.Rotate { status_only; _ } -> status_only

(* ------------------------------------------------------------------ *)
(* The pipelined request engine. One call tracks a batch of requests on
   this client's single connection, keeping up to [depth] of them in
   flight at once; responses are matched to requests by the echoed v8
   request id, so a slow request does not head-of-line block the others
   and completions may arrive in any order. Retry, breaker and
   idempotency bookkeeping is per request — a mid-pipeline disconnect
   re-queues the idempotent in-flight requests (their attempt budget
   permitting) and fails only the ones that cannot be safely resent.
   [rpc] is the depth-1 special case. *)

type slot = {
  s_request : Wire.request;
  s_tid : string;  (* one trace id for all attempts of this request *)
  s_max_attempts : int;
  mutable s_attempts : int;  (* send attempts used *)
  mutable s_req_id : int;  (* id of the in-flight send; 0 = not in flight *)
  mutable s_not_before : float;  (* earliest resend (backoff / shed hint) *)
  mutable s_delay : float;  (* next backoff delay *)
  mutable s_outcome : (Wire.response, Mope_error.t) result option;
}

let next_req_id t =
  t.next_id <- t.next_id + 1;
  t.next_id

let run_pipeline t ?query ?trace_id ~depth requests =
  if t.closed then
    Mope_error.failwithf ?query "Client: connection to %s:%d is closed" t.host
      t.port;
  let depth = Int.max 1 depth in
  (* Trace ids are stable across the attempts of one request, so
     server-side traces correlate its retries. Minting is gated on tracing
     being enabled in this process to keep the common path
     allocation-free. *)
  let mint () =
    match trace_id with
    | Some s -> s
    | None -> if Trace.enabled () then Trace.mint_id t.rng else ""
  in
  let probing =
    match breaker_state t with
    | `Open ->
      Metrics.gauge_set m_breaker_state 1;
      Mope_error.failwithf ?query
        "Client: circuit breaker open for %s:%d (retry in %.3gs)" t.host t.port
        (t.open_until -. Unix.gettimeofday ())
    | `Half_open ->
      Metrics.gauge_set m_breaker_state 2;
      true
    | `Closed -> false
  in
  let slots =
    Array.of_list
      (List.map
         (fun r ->
           { s_request = r;
             s_tid = mint ();
             (* A half-open probe gets exactly one shot; so does anything
                that is not idempotent. *)
             s_max_attempts =
               (if probing || not (idempotent r) then 1
                else 1 + t.request_retries);
             s_attempts = 0;
             s_req_id = 0;
             s_not_before = 0.0;
             s_delay = t.backoff;
             s_outcome = None })
         requests)
  in
  let inflight : (int, slot) Hashtbl.t = Hashtbl.create 16 in
  let unfinished () = Array.exists (fun s -> s.s_outcome = None) slots in
  let transport_error slot e =
    let fail ?cause msg =
      Mope_error.create ?query ?cause
        (Printf.sprintf "Client: %s (%s:%d, attempt %d)" msg t.host t.port
           slot.s_attempts)
    in
    match e with
    | Wire.Protocol_error msg -> fail ("malformed frame: " ^ msg)
    | End_of_file -> fail "server closed the connection"
    | Unix.Unix_error ((EAGAIN | EWOULDBLOCK | ETIMEDOUT), _, _) ->
      fail ~cause:e
        (Printf.sprintf "request timed out after %.3gs" t.timeout)
    | Unix.Unix_error _ -> fail ~cause:e "I/O error"
    | Mope_error.Error err -> err
    | e -> fail ~cause:e "unexpected failure"
  in
  (* Put a slot back in the pending pool behind a jittered delay — or, out
     of attempts (or with the breaker now open), settle its outcome. *)
  let retry_or_fail slot ~blown ~delay err =
    if slot.s_attempts < slot.s_max_attempts && not blown then begin
      Metrics.inc m_retries;
      slot.s_not_before <- Unix.gettimeofday () +. jittered t delay;
      slot.s_delay <- slot.s_delay *. 2.0
    end
    else slot.s_outcome <- Some (Error err)
  in
  (* A transport failure poisons the connection and every request on it:
     the response stream is gone, so nothing in flight can complete. *)
  let on_transport_failure e =
    drop_conn t;
    (match e with
    | Mope_error.Error _ -> () (* [establish] already recorded the failure *)
    | _ -> record_failure t);
    let blown = breaker_state t = `Open in
    Hashtbl.iter
      (fun _ slot ->
        slot.s_req_id <- 0;
        retry_or_fail slot ~blown ~delay:slot.s_delay (transport_error slot e))
      inflight;
    Hashtbl.reset inflight
  in
  (* [establish] can only fail with nothing in flight (a live connection
     implies an established one): charge a connect attempt to every
     pending request — each would have been sent on that connection. *)
  let on_establish_failure err =
    let blown = breaker_state t = `Open in
    Array.iter
      (fun slot ->
        if slot.s_outcome = None && slot.s_req_id = 0 then begin
          slot.s_attempts <- slot.s_attempts + 1;
          retry_or_fail slot ~blown ~delay:slot.s_delay err
        end)
      slots
  in
  let fail_pending_fast msg =
    Array.iter
      (fun slot ->
        if slot.s_outcome = None && slot.s_req_id = 0 then
          slot.s_outcome <- Some (Error (Mope_error.create ?query msg)))
      slots
  in
  let rec step () =
    if unfinished () then begin
      (match breaker_state t with
      | `Open ->
        (* The breaker opened mid-batch (in-flight requests were already
           settled by the failure that opened it): fail the rest fast. *)
        fail_pending_fast
          (Printf.sprintf "Client: circuit breaker open for %s:%d (retry in %.3gs)"
             t.host t.port
             (t.open_until -. Unix.gettimeofday ()))
      | _ -> ());
      (* While half-open, the window narrows to the single probe. *)
      let window = if t.open_until > 0.0 then 1 else depth in
      let now = Unix.gettimeofday () in
      (try
         Array.iter
           (fun slot ->
             if
               slot.s_outcome = None && slot.s_req_id = 0
               && slot.s_not_before <= now
               && Hashtbl.length inflight < window
             then begin
               let io = match t.conn with Some io -> io | None -> establish t in
               let id = next_req_id t in
               slot.s_req_id <- id;
               slot.s_attempts <- slot.s_attempts + 1;
               Hashtbl.replace inflight id slot;
               Wire.write_frame_t io
                 (Wire.encode_request ~trace_id:slot.s_tid ~session:t.session
                    ~req_id:id slot.s_request)
             end)
           slots
       with
      | Mope_error.Error err when Hashtbl.length inflight = 0 ->
        on_establish_failure err
      | e -> on_transport_failure e);
      if Hashtbl.length inflight = 0 then begin
        (* Nothing in flight: everything still unfinished is backing off.
           Sleep until the earliest slot becomes sendable. *)
        let next =
          Array.fold_left
            (fun acc s ->
              if s.s_outcome = None then Float.min acc s.s_not_before else acc)
            infinity slots
        in
        if next > now && next < infinity then Thread.delay (next -. now)
      end
      else begin
        (match t.conn with
        | None ->
          (* Unreachable: in-flight requests hold a live connection. *)
          on_transport_failure End_of_file
        | Some io -> (
          match Wire.decode_response (Wire.read_frame_t io) with
          | exception e -> on_transport_failure e
          | rid, resp -> (
            match Hashtbl.find_opt inflight rid with
            | Some slot -> begin
              Hashtbl.remove inflight rid;
              slot.s_req_id <- 0;
              record_success t;
              (* An [Overloaded] answer is the server shedding load, not a
                 broken transport: honour its retry-after hint, don't
                 count it against the breaker. *)
              match resp with
              | Wire.Error { code = Wire.Overloaded; retry_after; _ }
                when slot.s_attempts < slot.s_max_attempts ->
                Metrics.inc m_retries;
                let d =
                  match retry_after with Some d -> d | None -> slot.s_delay
                in
                slot.s_not_before <- Unix.gettimeofday () +. jittered t d;
                slot.s_delay <- slot.s_delay *. 2.0
              | resp -> slot.s_outcome <- Some (Ok resp)
            end
            | None -> (
              match resp with
              | Wire.Unsupported_version _ when rid = 0 ->
                (* Version mismatch is deterministic: the server answers
                   every request the same way and then drops the link, so
                   settle the whole batch with the structured answer and
                   drop our side too (in-flight responses will never
                   arrive). *)
                record_success t;
                drop_conn t;
                Hashtbl.reset inflight;
                Array.iter
                  (fun slot ->
                    if slot.s_outcome = None then begin
                      slot.s_req_id <- 0;
                      slot.s_outcome <- Some (Ok resp)
                    end)
                  slots
              | _ ->
                (* An answer for a request id we are not awaiting — id 0
                   means the server could not decode one of our frames
                   (it cannot say which): the stream is ambiguous either
                   way, so treat it as a transport failure. *)
                on_transport_failure
                  (Wire.Protocol_error
                     (Printf.sprintf "response for unexpected request id %d"
                        rid))))))
      end;
      step ()
    end
  in
  step ();
  List.map
    (fun slot ->
      match slot.s_outcome with
      | Some outcome -> outcome
      | None ->
        Error (Mope_error.create ?query "Client: request left unresolved"))
    (Array.to_list slots)

(* ------------------------------------------------------------------ *)
(* One request/response exchange — the depth-1 pipeline. [query] is the
   SQL context attached to any error raised. *)

let rpc t ?query ?trace_id request =
  match run_pipeline t ?query ?trace_id ~depth:1 [ request ] with
  | [ Ok resp ] -> resp
  | [ Error err ] -> raise (Mope_error.Error err)
  | _ -> Mope_error.failwithf ?query "Client: pipeline arity mismatch"

let pipeline t ?trace_id ?(depth = 8) requests =
  match requests with
  | [] -> []
  | requests -> run_pipeline t ?trace_id ~depth requests

let check_error ?query = function
  | Wire.Error { code; message; query = server_query; retry_after = _ } ->
    let query = match server_query with Some _ -> server_query | None -> query in
    Mope_error.raise_error ?query
      (Printf.sprintf "server error (%s): %s" (Wire.error_code_to_string code)
         message)
  | Wire.Unsupported_version { server_version } ->
    Mope_error.raise_error ?query
      (Printf.sprintf
         "server speaks protocol version %d, this client speaks %d; upgrade \
          the older side"
         server_version Wire.version)
  | resp -> resp

(* A [Fenced] refusal surfaces through [check_error] with a stable prefix;
   failover logic (the cluster coordinator) needs to tell it apart from
   transport failures without a second error channel. *)
let fenced_prefix = "server error (fenced)"

let is_fenced (e : Mope_error.t) =
  String.starts_with ~prefix:fenced_prefix e.Mope_error.msg

(* ------------------------------------------------------------------ *)
(* Health probing. A failure detector cannot afford the general request
   timeout (seconds): one slow probe would stall the whole probe round.
   [ping ~timeout] bounds a single attempt two ways: the raw socket's
   SO_RCVTIMEO/SO_SNDTIMEO cut short a silent peer parked in read(2), and
   a deadline check between transport operations cuts short a peer that
   trickles bytes (or a chaos transport injecting delays) — each chunk
   lands, but the probe still misses its budget. *)

let with_deadline ~deadline (io : Transport.t) =
  let check op =
    if Unix.gettimeofday () > deadline then
      raise (Unix.Unix_error (Unix.ETIMEDOUT, op, "probe deadline exceeded"))
  in
  { Transport.read =
      (fun buf pos len ->
        check "read";
        let n = io.Transport.read buf pos len in
        check "read";
        n);
    write =
      (fun buf pos len ->
        check "write";
        let n = io.Transport.write buf pos len in
        check "write";
        n);
    close = io.Transport.close }

let set_socket_timeouts t d =
  match t.fd with
  | None -> ()
  | Some fd -> (
    try
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO d;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO d
    with Unix.Unix_error _ -> ())

let probe_ping t budget =
  if t.closed then
    Mope_error.failwithf "Client: connection to %s:%d is closed" t.host t.port;
  (* One dial attempt, bounded by the probe budget — never the general
     connect-retry/backoff schedule. *)
  let io =
    match t.conn with
    | Some io -> io
    | None -> (
      match dial ~timeout:budget t with
      | io ->
        t.conn <- Some io;
        io
      | exception e ->
        record_failure t;
        Mope_error.failwithf ~cause:e "Client.ping: %s:%d unreachable" t.host
          t.port)
  in
  let deadline = Unix.gettimeofday () +. budget in
  set_socket_timeouts t budget;
  let outcome =
    match
      let io = with_deadline ~deadline io in
      Wire.write_frame_t io (Wire.encode_request Wire.Ping);
      Wire.decode_response (Wire.read_frame_t io)
    with
    | _id, resp -> Ok resp
    | exception e -> Error e
  in
  match outcome with
  | Ok resp -> (
    set_socket_timeouts t t.timeout;
    record_success t;
    match check_error resp with
    | Wire.Pong -> ()
    | _ -> Mope_error.raise_error "Client.ping: unexpected response")
  | Error e ->
    (* The probe's socket may hold a late Pong that would desynchronize the
       next request's framing: drop the connection rather than restore it. *)
    drop_conn t;
    record_failure t;
    let detail =
      match e with
      | Unix.Unix_error ((EAGAIN | EWOULDBLOCK | ETIMEDOUT), _, _) ->
        Printf.sprintf "probe timed out after %.3gs" budget
      | _ -> "probe failed"
    in
    Mope_error.failwithf ~cause:e "Client.ping: %s (%s:%d)" detail t.host
      t.port

let ping ?timeout t =
  match timeout with
  | Some budget when budget > 0.0 -> probe_ping t budget
  | _ -> (
    match check_error (rpc t Wire.Ping) with
    | Wire.Pong -> ()
    | _ -> Mope_error.raise_error "Client.ping: unexpected response")

let query t ?trace_id ~sql ~date_column ~date_lo ~date_hi () =
  let request = Wire.Query { sql; date_column; date_lo; date_hi } in
  match check_error ~query:sql (rpc t ~query:sql ?trace_id request) with
  | Wire.Rows result -> result
  | _ -> Mope_error.raise_error ~query:sql "Client.query: unexpected response"

let query_batch t ?trace_id ?depth ~date_column ~queries () =
  let requests =
    List.map
      (fun (sql, date_lo, date_hi) ->
        Wire.Query { sql; date_column; date_lo; date_hi })
      queries
  in
  List.map2
    (fun (sql, _, _) outcome ->
      match outcome with
      | Error err ->
        Error
          (match err.Mope_error.query with
          | Some _ -> err
          | None -> { err with Mope_error.query = Some sql })
      | Ok resp -> (
        match check_error ~query:sql resp with
        | Wire.Rows result -> Ok result
        | _ ->
          Error
            (Mope_error.create ~query:sql
               "Client.query_batch: unexpected response")
        | exception Mope_error.Error err -> Error err))
    queries
    (pipeline t ?trace_id ?depth requests)

let fetch t ?trace_id ?(epoch = 0) ~sql () =
  match
    check_error ~query:sql (rpc t ~query:sql ?trace_id (Wire.Fetch { sql; epoch }))
  with
  | Wire.Rows result -> result
  | _ -> Mope_error.raise_error ~query:sql "Client.fetch: unexpected response"

let fetch_batch t ?trace_id ?depth ?(epoch = 0) ~sqls () =
  let requests = List.map (fun sql -> Wire.Fetch { sql; epoch }) sqls in
  List.map2
    (fun sql outcome ->
      match outcome with
      | Error err ->
        Error
          (match err.Mope_error.query with
          | Some _ -> err
          | None -> { err with Mope_error.query = Some sql })
      | Ok resp -> (
        match check_error ~query:sql resp with
        | Wire.Rows result -> Ok result
        | _ ->
          Error
            (Mope_error.create ~query:sql
               "Client.fetch_batch: unexpected response")
        | exception Mope_error.Error err -> Error err))
    sqls
    (pipeline t ?trace_id ?depth requests)

let apply t ?trace_id ?(epoch = 0) ?(request_id = "") ~sql () =
  match
    check_error ~query:sql
      (rpc t ~query:sql ?trace_id (Wire.Apply { sql; epoch; request_id }))
  with
  | Wire.Applied { wal_pos } -> wal_pos
  | _ -> Mope_error.raise_error ~query:sql "Client.apply: unexpected response"

let fence t ?trace_id ~epoch () =
  match check_error (rpc t ?trace_id (Wire.Fence { epoch })) with
  | Wire.Epoch_state { epoch } -> epoch
  | _ -> Mope_error.raise_error "Client.fence: unexpected response"

let wal_since t ?trace_id ~from_pos ~max_bytes () =
  let request = Wire.Wal_since { from_pos; max_bytes } in
  match check_error (rpc t ?trace_id request) with
  | Wire.Wal_chunk { resync; records; next_pos; end_pos } ->
    { Mope_db.Wal.records; next_pos; end_pos; resync }
  | _ -> Mope_error.raise_error "Client.wal_since: unexpected response"

let counters t =
  match check_error (rpc t Wire.Get_counters) with
  | Wire.Counters c -> c
  | _ -> Mope_error.raise_error "Client.counters: unexpected response"

let stats t =
  match check_error (rpc t Wire.Get_stats) with
  | Wire.Stats s -> s
  | _ -> Mope_error.raise_error "Client.stats: unexpected response"

(* ------------------------------------------------------------------ *)
(* Tenant sessions (wire v7). The shared secret never leaves this
   function: only its HMAC over the server-minted nonce goes on the
   wire. *)

let session t = if t.session = "" then None else Some t.session

let clear_session t = t.session <- ""

let open_session t ?trace_id ~tenant ~secret () =
  let nonce =
    match check_error (rpc t ?trace_id (Wire.Open_session { tenant })) with
    | Wire.Session_challenge { nonce } -> nonce
    | _ ->
      Mope_error.raise_error "Client.open_session: unexpected response"
  in
  let mac = Mope_crypto.Hmac.mac_hex ~key:secret nonce in
  match check_error (rpc t ?trace_id (Wire.Authenticate { tenant; nonce; mac })) with
  | Wire.Session_ok { token } ->
    t.session <- token;
    token
  | _ -> Mope_error.raise_error "Client.open_session: unexpected response"

let rotate t ?trace_id ?(status_only = false) ~tenant () =
  match check_error (rpc t ?trace_id (Wire.Rotate { tenant; status_only })) with
  | Wire.Rotation { state; generation; rows_moved; rows_total } ->
    { state; generation; rows_moved; rows_total }
  | _ -> Mope_error.raise_error "Client.rotate: unexpected response"

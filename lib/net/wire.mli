(** The proxy's wire protocol: versioned, length-prefixed binary frames.

    Every message travels as one frame: a 4-byte big-endian payload length,
    a 4-byte CRC-32 of the payload (so in-flight corruption is detected at
    the framing layer instead of being decoded into wrong data), then the
    payload. The payload starts with a 1-byte protocol version and
    a 1-byte message tag; the body is self-describing in the same style as
    {!Mope_db.Storage} (big-endian fixed-width integers, length-prefixed
    strings, tagged values — no [Marshal], so frames are stable across
    compiler versions and languages). See DESIGN.md for the exact layout.

    Decoders never trust the peer: bad versions, unknown tags, truncated
    bodies, trailing bytes and oversized length prefixes all raise
    {!Protocol_error} with a reason. *)

open Mope_db

exception Protocol_error of string

exception Version_mismatch of { peer_version : int }
(** The payload's version byte differs from {!version} (and the message is
    not the version-independent [Unsupported_version] escape hatch).
    Distinct from {!Protocol_error} so a server can answer the structured
    {!Unsupported_version} response instead of a generic [Bad_frame]. *)

val version : int
(** Current protocol version (8 — v8 added request pipelining: a
    client-minted numeric request id in the request header, echoed
    between the tag and body of every response except the frozen
    [Unsupported_version], so responses on one connection may complete
    out of order and the client can match them; v7 added multi-tenancy: a session-token
    field in the request header, the [Open_session]/[Authenticate]/
    [Rotate] requests with their [Session_challenge]/[Session_ok]/
    [Rotation] responses, the [Auth_failed]/[Unknown_tenant] error codes,
    and the version-independent [Unsupported_version] response; v6 added
    cluster fault tolerance: a fencing [epoch] field on [Fetch]/[Apply], a
    client-minted [request_id] on [Apply] for exactly-once retries, the
    [Fence] request with its [Epoch_state] response, and the [Fenced]
    error code; v5 added the cluster store/replication ops
    [Fetch]/[Apply]/[Wal_since] and their responses; v4 added the
    cache-counter fields to {!counters}; v3 added a trace-id field to the
    request header; v2 added the [retry_after] field to error responses).
    A decoder rejects frames whose version byte differs — version bumps
    are breaking by design; additions that only define new tags do not
    bump it. The one exception is [Unsupported_version] (tag 0xBE), whose
    frozen single-integer body decodes under any version byte: it exists
    precisely to tell a mismatched peer which version the server speaks. *)

val max_trace_id : int
(** Upper bound on the length of a request's trace id (64 bytes). *)

val max_session : int
(** Upper bound on the length of a header session token (64 bytes). *)

val max_tenant_id : int
(** Upper bound on the length of a tenant id (64 bytes) — also bounds the
    tenant metric-label values derived from it. *)

val max_mac : int
(** Upper bound on the length of a handshake nonce or MAC (128 bytes, hex
    renderings of at most 32 raw bytes). *)

val max_request_id : int
(** Upper bound on the length of an [Apply] request id (64 bytes) — the
    key of the store-side dedup table, so bounding it bounds that table's
    memory alongside its entry cap. *)

val max_frame : int
(** Upper bound on a payload length (16 MiB). A length prefix above this is
    rejected before any allocation, so a malicious or corrupt header cannot
    make either side allocate unbounded memory. *)

(** Snapshot of the proxy-side obfuscation and cache counters (see
    {!Mope_system.Proxy.counters}), immutable for transport. The cache
    fields aggregate over the service: segment-cache numbers sum across
    proxies, plan-cache numbers across distinct server databases. *)
type counters = {
  client_queries : int;
  real_pieces : int;
  fake_queries : int;
  server_requests : int;
  rows_fetched : int;
  rows_delivered : int;
  plan_cache_hits : int;
  plan_cache_misses : int;
  segment_cache_hits : int;
  segment_cache_misses : int;
}

(** Observability snapshot served by {!Get_stats}: both metric renderings
    plus the server's recent trace ring (see {!Mope_obs}). *)
type stats = {
  metrics_text : string;  (** Prometheus text exposition *)
  metrics_json : string;
  traces : Mope_obs.Trace.dump list;  (** newest first *)
}

type header = { trace_id : string; session : string; req_id : int }
(** The v8 request header, carried between the tag byte and the body of
    every request: the client-minted trace id (v3, [""] = untraced), the
    session token minted by a successful [Authenticate] (v7, [""] =
    unauthenticated — sufficient for [Ping]/[Open_session]/[Authenticate]
    and for single-tenant services that predate sessions), and the
    request id (v8, [0] = unassigned). A pipelining client assigns each
    in-flight request a distinct positive id and matches responses by the
    echoed id; a lockstep client sends 0 and gets 0 back. *)

val no_header : header
(** [{ trace_id = ""; session = ""; req_id = 0 }]. *)

type request =
  | Ping
  | Query of {
      sql : string;             (** full plaintext SQL *)
      date_column : string;     (** the MOPE-encrypted attribute ranged over *)
      date_lo : Date.t;         (** inclusive range start *)
      date_hi : Date.t;         (** inclusive range end *)
    }
  | Get_counters
  | Get_stats
  | Fetch of { sql : string; epoch : int }
      (** cluster-store read: run one SELECT against the shard's database
          and return the raw (still-encrypted) rows. [epoch] is the
          caller's fencing epoch for the shard (0 = unfenced: skip the
          check); a store whose epoch differs answers {!Fenced} so a
          deposed primary can never serve stale reads *)
  | Apply of { sql : string; epoch : int; request_id : string }
      (** cluster-store write: execute one mutating statement and append it
          to the shard's WAL; answered with {!Applied}. [epoch] fences as
          for [Fetch]. [request_id] (at most {!max_request_id} bytes; [""]
          = none) keys the store's bounded dedup table: retrying the same
          id is answered from the table instead of double-applying, which
          is what makes [Apply] safely retryable across a failover *)
  | Wal_since of { from_pos : int; max_bytes : int }
      (** replication pull: ship WAL records from [from_pos] on, at most
          [max_bytes] of payload per chunk; answered with {!Wal_chunk} *)
  | Fence of { epoch : int }
      (** control-plane: seal the store at [epoch] — it adopts the epoch
          and refuses every subsequent [Fetch]/[Apply] with {!Fenced} until
          it is re-pointed or rebuilt. [epoch = 0] only queries. Answered
          with {!Epoch_state}. Sent by the supervisor to a deposed primary
          that comes back from a partition *)
  | Open_session of { tenant : string }
      (** first half of the session handshake: ask the server for a fresh
          challenge nonce for [tenant]; answered with {!Session_challenge}
          (or {!Unknown_tenant}) *)
  | Authenticate of { tenant : string; nonce : string; mac : string }
      (** second half: [mac] is the hex HMAC of the challenge [nonce]
          under the tenant's shared auth secret. A correct MAC is answered
          with {!Session_ok} carrying the token to put in every subsequent
          request header; anything else gets {!Auth_failed} *)
  | Rotate of { tenant : string; status_only : bool }
      (** start an online key rotation for the session's own tenant
          ([status_only = false]; idempotent while one is running), or
          poll the current rotation state ([status_only = true]). Requires
          an authenticated session for [tenant] — rotating someone else's
          keys is {!Auth_failed}. Answered with {!Rotation} *)

type error_code =
  | Bad_frame    (** the peer sent something the codec rejected *)
  | Unsupported  (** well-formed request the server cannot serve *)
  | Exec_failed  (** the proxy pipeline raised while executing the query *)
  | Overloaded   (** the server is shedding load *)
  | Internal     (** anything else; the message carries the details *)
  | Fenced
      (** the request's fencing epoch does not match the store's — either
          the requester is behind a promotion, or the store is a sealed or
          stale ex-primary; the message names both epochs *)
  | Auth_failed
      (** bad MAC, unknown/expired session token, or a session used for a
          tenant it was not opened for; the message never says which *)
  | Unknown_tenant
      (** [Open_session] named a tenant the registry does not know *)

type response =
  | Pong
  | Rows of Exec.result
  | Counters of counters
  | Stats of stats
  | Applied of { wal_pos : int }
      (** the statement is applied and logged; [wal_pos] is the shard WAL's
          end offset afterwards (0 when the store runs without a WAL) *)
  | Wal_chunk of {
      resync : bool;
          (** the follower's cursor no longer names a record boundary; it
              must rebuild from a fresh snapshot (see {!Mope_db.Wal.since}) *)
      records : string list;  (** statements, oldest first *)
      next_pos : int;  (** cursor for the next [Wal_since] *)
      end_pos : int;  (** primary WAL end; lag = [end_pos - next_pos] *)
    }
  | Epoch_state of { epoch : int }
      (** the store's fencing epoch after a {!Fence} request *)
  | Session_challenge of { nonce : string }
      (** the server-minted challenge to MAC in {!request.Authenticate} *)
  | Session_ok of { token : string }
      (** the session is open; put [token] in every subsequent request
          header ({!header.session}) *)
  | Rotation of {
      state : string;  (** ["serving"] or ["rotating"] *)
      generation : int;  (** key generation currently serving reads *)
      rows_moved : int;  (** rows re-encrypted so far in this rotation *)
      rows_total : int;  (** rows to move (0 when idle) *)
    }  (** rotation progress after a {!request.Rotate} *)
  | Unsupported_version of { server_version : int }
      (** the request's version byte differs from the server's. The one
          message decodable under any version byte (frozen body layout),
          so a pre-v7 client fails with a structured error instead of a
          codec crash *)
  | Error of {
      code : error_code;
      message : string;
      query : string option;
      retry_after : float option;
          (** hint: seconds to wait before retrying; set by the server's
              load shedder on [Overloaded] *)
    }

val error_code_to_string : error_code -> string

(* Codecs: [encode_*] produce a payload (no length prefix); [decode_*]
   consume one and raise [Protocol_error] on any malformation. *)

val encode_request :
  ?trace_id:string -> ?session:string -> ?req_id:int -> request -> string
(** [trace_id] (default [""] = untraced), [session] (default [""] =
    unauthenticated) and [req_id] (default [0] = unassigned) ride in the
    request header; the strings must be at most {!max_trace_id} and
    {!max_session} bytes respectively and [req_id] must be non-negative. *)

val decode_request : string -> header * request
(** Returns the request with its header; header fields are [""] when the
    client sent none. Raises {!Version_mismatch} (never [Protocol_error])
    when the version byte differs from {!version}. *)

val encode_response : ?req_id:int -> response -> string
(** [req_id] (default [0]) is the id echoed from the request being
    answered; it rides between the response tag and body. Ignored for
    [Unsupported_version], whose body layout is frozen at the header-less
    v7 shape so any-version peers can read it. *)

val decode_response : string -> int * response
(** Returns the echoed request id with the response ([0] for
    [Unsupported_version] and for servers answering unassigned-id
    requests). *)

(* Framed I/O over a {!Transport.t} — the seam where {!Chaos} interposes. *)

val write_frame_t : Transport.t -> string -> unit
(** Prefix the payload with its length and CRC-32 and write it fully
    (handles short writes). Raises [Invalid_argument] if the payload
    exceeds {!max_frame}. *)

val read_frame_t : Transport.t -> string
(** Read one frame and return its payload. Raises [End_of_file] on a clean
    close before any header byte, {!Protocol_error} on a mid-frame close,
    an out-of-bounds length prefix or a checksum mismatch, and lets
    [Unix.Unix_error] (e.g. a [SO_RCVTIMEO] timeout surfacing as [EAGAIN])
    propagate. *)

(* The same over a connected socket directly. *)

val write_frame : Unix.file_descr -> string -> unit
val read_frame : Unix.file_descr -> string

(** Deterministic fault injection for the networked proxy.

    [wrap] interposes on a {!Transport.t} and, driven entirely by a
    {!Mope_stats.Rng} (Splitmix64) seed, injects the failures a proxy
    meets in production: short reads/writes, artificial latency, abrupt
    disconnects, and in-flight byte corruption. Equal seeds give equal
    fault schedules, so every failure scenario a test (or a CI seed
    matrix) exercises is reproducible from its seed alone.

    Faults are injected per [read]/[write] call, each kind with an
    independent probability. A disconnect closes the underlying transport
    and raises [Unix.Unix_error (ECONNRESET, _, _)]; every later operation
    on the wrapper fails the same way — exactly how a vanished peer looks
    to the framing layer. Corruption flips one random bit of the data in
    transit (the caller's buffer is never mutated). *)

type config = {
  partial_io : float;
      (** probability a read/write is truncated to a random shorter chunk
          (at least 1 byte, so progress is still guaranteed) *)
  delay : float;      (** probability an operation sleeps first *)
  max_delay : float;  (** upper bound of the uniform injected sleep, seconds *)
  disconnect : float; (** probability an operation drops the connection *)
  corrupt : float;    (** probability one bit of the transfer is flipped *)
}

val none : config
(** All probabilities zero: [wrap none] is the identity in behaviour. *)

val slow : config
(** Partial I/O on half the calls plus up to 2 ms latency — degraded but
    lossless: byte streams still arrive intact and in order. *)

val hostile : config
(** [slow] plus occasional disconnects and bit flips — the full storm. *)

val wrap : ?config:config -> seed:int64 -> Transport.t -> Transport.t
(** [wrap ~seed io] with an own generator seeded from [seed]. [config]
    defaults to {!hostile}. Not thread-safe: wrap each connection with its
    own wrapper (derive per-connection seeds from a parent seed). *)

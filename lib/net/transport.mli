(** Byte-stream abstraction between the framing layer and the socket.

    {!Wire}'s framed I/O reads and writes through this record instead of a
    raw [Unix.file_descr], so a test (or an operator reproducing an
    incident) can interpose {!Chaos} — deterministic partial I/O, latency,
    disconnects and corruption — without touching the server or client.
    The operations follow the [Unix.read]/[Unix.write] contract: they may
    transfer fewer bytes than asked, return [0] on end-of-stream (reads),
    and raise [Unix.Unix_error] on failure. *)

type t = {
  read : bytes -> int -> int -> int;
      (** [read buf pos len] fills at most [len] bytes at [pos]; returns the
          count transferred, [0] at end-of-stream. *)
  write : bytes -> int -> int -> int;
      (** [write buf pos len] sends at most [len] bytes from [pos]; returns
          the count accepted (possibly short). *)
  close : unit -> unit;  (** Release the underlying resource. Idempotent. *)
}

val of_fd : Unix.file_descr -> t
(** The identity transport over a connected socket (or any fd). [close]
    swallows [Unix.Unix_error] so double-closes are harmless. *)

val of_strings : string list -> t
(** An in-memory read-only transport that replays the given chunks one
    [read] call at a time (then end-of-stream) and discards writes — a
    deterministic stand-in for a peer in codec tests. *)

open Mope_system
module Metrics = Mope_obs.Metrics
module Trace = Mope_obs.Trace

(* A checkout/checkin freelist of proxies for one date column. The pooled
   server runs the handler on many workers at once; a worker checks a
   proxy out, executes with no lock held, and checks it back in — so the
   pool mutex guards only the freelist, never a query execution. With one
   member (the default) same-column queries serialize exactly as the old
   one-mutex-per-proxy design did, but parked on a condition instead of a
   held mutex. *)
type pool = {
  lock : Mutex.t;
  free_nonempty : Condition.t;
  mutable free : Proxy.t list;
  all : Proxy.t list;  (* immutable member list, for counter sweeps *)
}

type t = { proxies : (string * pool) list }

let make_pool members =
  { lock = Mutex.create ();
    free_nonempty = Condition.create ();
    free = members;
    all = members }

let validate columns =
  if List.length (List.sort_uniq compare columns) <> List.length columns then
    invalid_arg "Service.create: duplicate date column"

let create_pooled ~proxies () =
  if proxies = [] then invalid_arg "Service.create: no proxies";
  validate (List.map fst proxies);
  { proxies =
      List.map
        (fun (col, members) ->
          if members = [] then
            invalid_arg ("Service.create: no proxies for column " ^ col);
          (col, make_pool members))
        proxies }

let create ~proxies () =
  create_pooled
    ~proxies:(List.map (fun (col, p) -> (col, [ p ])) proxies)
    ()

let locked lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let checkout pool =
  locked pool.lock (fun () ->
      while pool.free = [] do
        Condition.wait pool.free_nonempty pool.lock
      done;
      match pool.free with
      | p :: rest ->
        pool.free <- rest;
        p
      | [] ->
        Mope_error.raise_error
          "Service.checkout: internal invariant: empty freelist after wait")

let checkin pool p =
  locked pool.lock (fun () ->
      pool.free <- p :: pool.free;
      Condition.signal pool.free_nonempty)

let counters t =
  let base =
    List.fold_left
      (fun acc (_, pool) ->
        List.fold_left
          (fun acc proxy ->
            let c = Proxy.counters proxy in
            { acc with
              Wire.client_queries =
                acc.Wire.client_queries + c.Proxy.client_queries;
              real_pieces = acc.Wire.real_pieces + c.Proxy.real_pieces;
              fake_queries = acc.Wire.fake_queries + c.Proxy.fake_queries;
              server_requests =
                acc.Wire.server_requests + c.Proxy.server_requests;
              rows_fetched = acc.Wire.rows_fetched + c.Proxy.rows_fetched;
              rows_delivered = acc.Wire.rows_delivered + c.Proxy.rows_delivered;
              segment_cache_hits =
                acc.Wire.segment_cache_hits + c.Proxy.segment_cache_hits;
              segment_cache_misses =
                acc.Wire.segment_cache_misses + c.Proxy.segment_cache_misses })
          acc pool.all)
      { Wire.client_queries = 0; real_pieces = 0; fake_queries = 0;
        server_requests = 0; rows_fetched = 0; rows_delivered = 0;
        plan_cache_hits = 0; plan_cache_misses = 0; segment_cache_hits = 0;
        segment_cache_misses = 0 }
      t.proxies
  in
  (* Proxies over the same encrypted database share one server database —
     and hence one plan cache — so dedupe by physical identity before
     summing, or shared stats would be counted once per proxy. *)
  let server_dbs =
    List.fold_left
      (fun acc (_, pool) ->
        List.fold_left
          (fun acc proxy ->
            let db = Proxy.server_database proxy in
            if List.exists (fun d -> d == db) acc then acc else db :: acc)
          acc pool.all)
      [] t.proxies
  in
  let plan_hits, plan_misses =
    List.fold_left
      (fun (h, m) db ->
        match Mope_db.Database.plan_cache_stats db with
        | None -> (h, m)
        | Some s -> (h + s.Mope_db.Plan_cache.hits, m + s.Mope_db.Plan_cache.misses))
      (0, 0) server_dbs
  in
  { base with Wire.plan_cache_hits = plan_hits; plan_cache_misses = plan_misses }

let stats () =
  Wire.Stats
    { Wire.metrics_text = Metrics.render_prometheus ();
      metrics_json = Metrics.render_json ();
      traces = Trace.recent () }

let handler t (_header : Wire.header) = function
  | Wire.Ping -> Wire.Pong
  | Wire.Get_counters -> Wire.Counters (counters t)
  | Wire.Get_stats -> stats ()
  | Wire.Fetch { sql; _ } | Wire.Apply { sql; _ } ->
    (* Store ops are served by cluster shard stores (Mope_cluster.Store),
       not by the query frontend. *)
    Wire.Error
      { code = Wire.Unsupported;
        message = "store operation sent to a query frontend";
        query = Some sql;
        retry_after = None }
  | Wire.Wal_since _ | Wire.Fence _ ->
    Wire.Error
      { code = Wire.Unsupported;
        message = "cluster control operation sent to a query frontend";
        query = None;
        retry_after = None }
  | Wire.Open_session _ | Wire.Authenticate _ | Wire.Rotate _ ->
    (* Sessions exist only on the multi-tenant frontend
       (Mope_tenant.Tenant_service); this single-tenant service has no
       registry to authenticate against. *)
    Wire.Error
      { code = Wire.Unsupported;
        message = "tenant operation sent to a single-tenant service";
        query = None;
        retry_after = None }
  | Wire.Query { sql; date_column; date_lo; date_hi } -> begin
    match List.assoc_opt date_column t.proxies with
    | None ->
      Wire.Error
        { code = Wire.Unsupported;
          message = "no proxy serves date column " ^ date_column;
          query = Some sql;
          retry_after = None }
    | Some pool ->
      let proxy = checkout pool in
      let outcome =
        Fun.protect
          ~finally:(fun () -> checkin pool proxy)
          (fun () ->
            match
              Trace.with_span "exec" (fun () ->
                  Proxy.execute proxy ~sql ~date_column ~date_lo ~date_hi)
            with
            | result -> Ok result
            | exception e -> Error e)
      in
      (match outcome with
      | Ok result -> Wire.Rows result
      | Error e ->
        Wire.Error
          { code = Wire.Exec_failed;
            message = Mope_error.describe_exn e;
            query = Some sql;
            retry_after = None })
  end

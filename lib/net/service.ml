open Mope_system
module Metrics = Mope_obs.Metrics
module Trace = Mope_obs.Trace

type t = { proxies : (string * (Mutex.t * Proxy.t)) list }

let create ~proxies () =
  if proxies = [] then invalid_arg "Service.create: no proxies";
  let columns = List.map fst proxies in
  if List.length (List.sort_uniq compare columns) <> List.length columns then
    invalid_arg "Service.create: duplicate date column";
  { proxies = List.map (fun (col, p) -> (col, (Mutex.create (), p))) proxies }

let locked lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counters t =
  List.fold_left
    (fun acc (_, (lock, proxy)) ->
      let c = locked lock (fun () -> Proxy.counters proxy) in
      { Wire.client_queries = acc.Wire.client_queries + c.Proxy.client_queries;
        real_pieces = acc.Wire.real_pieces + c.Proxy.real_pieces;
        fake_queries = acc.Wire.fake_queries + c.Proxy.fake_queries;
        server_requests = acc.Wire.server_requests + c.Proxy.server_requests;
        rows_fetched = acc.Wire.rows_fetched + c.Proxy.rows_fetched;
        rows_delivered = acc.Wire.rows_delivered + c.Proxy.rows_delivered })
    { Wire.client_queries = 0; real_pieces = 0; fake_queries = 0;
      server_requests = 0; rows_fetched = 0; rows_delivered = 0 }
    t.proxies

let stats () =
  Wire.Stats
    { Wire.metrics_text = Metrics.render_prometheus ();
      metrics_json = Metrics.render_json ();
      traces = Trace.recent () }

let handler t = function
  | Wire.Ping -> Wire.Pong
  | Wire.Get_counters -> Wire.Counters (counters t)
  | Wire.Get_stats -> stats ()
  | Wire.Query { sql; date_column; date_lo; date_hi } -> begin
    match List.assoc_opt date_column t.proxies with
    | None ->
      Wire.Error
        { code = Wire.Unsupported;
          message = "no proxy serves date column " ^ date_column;
          query = Some sql;
          retry_after = None }
    | Some (lock, proxy) ->
      let outcome =
        locked lock (fun () ->
            match
              Trace.with_span "exec" (fun () ->
                  Proxy.execute proxy ~sql ~date_column ~date_lo ~date_hi)
            with
            | result -> Ok result
            | exception e -> Error e)
      in
      (match outcome with
      | Ok result -> Wire.Rows result
      | Error e ->
        Wire.Error
          { code = Wire.Exec_failed;
            message = Mope_error.describe_exn e;
            query = Some sql;
            retry_after = None })
  end

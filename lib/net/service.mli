(** Request handler bridging the wire protocol to the proxy pipeline.

    A service owns one {!Mope_system.Proxy.t} per served date column
    (e.g. [l_shipdate] and [o_orderdate] for the TPC-H testbed) and
    dispatches each [Wire.Query] to the proxy for its column.
    {!Mope_system.Proxy.t} is single-threaded (mutable counters, one RNG,
    one adaptive learner), so each proxy sits behind its own mutex —
    queries on different columns run concurrently, queries on the same
    column serialize. *)

open Mope_system

type t

val create : proxies:(string * Proxy.t) list -> unit -> t
(** [create ~proxies] with [proxies] mapping a date-column name to the
    proxy serving it. Raises [Invalid_argument] on an empty or duplicated
    mapping. *)

val handler : t -> Wire.header -> Wire.request -> Wire.response
(** [Ping] → [Pong]; [Get_counters] → the field-wise sum over all proxies;
    [Get_stats] → the observability snapshot ({!stats}); [Query] → [Rows]
    via {!Proxy.execute} (wrapped in an ["exec"] trace span), or a
    structured [Wire.Error] ([Unsupported] for an unknown date column,
    [Exec_failed] with the query attached when the pipeline raises).
    The header is ignored: this frontend is single-tenant, so session
    ops answer [Unsupported] (see {!Mope_tenant.Tenant_service} for the
    session-aware dispatcher). *)

val stats : unit -> Wire.response
(** The [Stats] response served for [Get_stats]: current
    {!Mope_obs.Metrics} renderings plus {!Mope_obs.Trace.recent}. *)

val counters : t -> Wire.counters
(** The same aggregate [Get_counters] reports, for in-process callers. *)

(** Request handler bridging the wire protocol to the proxy pipeline.

    A service owns a checkout/checkin pool of {!Mope_system.Proxy.t}s per
    served date column (e.g. [l_shipdate] and [o_orderdate] for the TPC-H
    testbed) and dispatches each [Wire.Query] to a proxy for its column.
    {!Mope_system.Proxy.t} is single-threaded (mutable counters, one RNG,
    one adaptive learner), so a server worker checks one out of the
    column's freelist, executes with no lock held, and checks it back in;
    workers wanting a busy column park on the pool's condition variable.
    With the default one-proxy pools, queries on different columns run
    concurrently and queries on the same column serialize — the handler
    never blocks a worker while {e holding} a lock, which is what the
    pooled {!Server} needs from its handlers. *)

open Mope_system

type t

val create : proxies:(string * Proxy.t) list -> unit -> t
(** [create ~proxies] with [proxies] mapping a date-column name to the
    proxy serving it (a pool of one). Raises [Invalid_argument] on an
    empty or duplicated mapping. *)

val create_pooled : proxies:(string * Proxy.t list) list -> unit -> t
(** Like {!create} with several interchangeable proxies per column:
    same-column queries then execute concurrently, one per member. The
    members must not share mutable state — build each over its own
    {!Mope_system.Encrypted_db.t} handle (they may target the same
    underlying server database; the counter sweep already dedupes the
    shared plan cache by physical identity). Raises [Invalid_argument] if
    any column's list is empty. *)

val handler : t -> Wire.header -> Wire.request -> Wire.response
(** [Ping] → [Pong]; [Get_counters] → the field-wise sum over all proxies;
    [Get_stats] → the observability snapshot ({!stats}); [Query] → [Rows]
    via {!Proxy.execute} (wrapped in an ["exec"] trace span), or a
    structured [Wire.Error] ([Unsupported] for an unknown date column,
    [Exec_failed] with the query attached when the pipeline raises).
    The header is ignored: this frontend is single-tenant, so session
    ops answer [Unsupported] (see {!Mope_tenant.Tenant_service} for the
    session-aware dispatcher). *)

val stats : unit -> Wire.response
(** The [Stats] response served for [Get_stats]: current
    {!Mope_obs.Metrics} renderings plus {!Mope_obs.Trace.recent}. *)

val counters : t -> Wire.counters
(** The same aggregate [Get_counters] reports, for in-process callers. *)

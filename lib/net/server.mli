(** Concurrent, pipelined TCP front-end for the trusted proxy.

    A pooled executor over [Unix] sockets (the Throttle/Sequencer idiom:
    serialize per-handle, parallelize across handles). Each accepted
    connection gets a {e reader} thread — read a frame, decode it, admit
    or shed — and a {e writer} thread, the response sequencer: the only
    thread that writes to that socket, so responses from concurrently
    completing requests never interleave frames. Admitted requests go to
    one shared worker pool of [max_in_flight] threads (32 when
    unlimited), so requests from one connection execute concurrently and
    may complete out of order; the wire v8 request id echoed in each
    response is what lets a pipelining client match them (lockstep
    clients send id 0 and are answered in order, one at a time). The
    accept loop applies backpressure — when [max_connections] clients
    are live it stops accepting and lets the kernel backlog absorb the
    burst — and a graceful {!shutdown} stops accepting, unblocks
    readers, drains queued work through the pool, and joins every
    thread.

    The server is transport only: a [handler] turns each decoded
    {!Wire.request} (with its {!Wire.header} — trace id, session token
    and request id) into a {!Wire.response}. Handler exceptions become
    structured [Wire.Error] responses, never crashes; malformed frames
    get a [Bad_frame] error reply and the connection is closed (the
    stream offset can no longer be trusted); frames from a peer speaking
    another protocol version get the structured
    {!Wire.Unsupported_version} answer before the drop. The handler runs
    on pool threads concurrently — it must do its own locking (see
    {!Service}). *)

type config = {
  host : string;           (** bind address, default ["127.0.0.1"] *)
  port : int;              (** 0 picks an ephemeral port (see {!port}) *)
  backlog : int;           (** listen(2) backlog, default 16 *)
  max_connections : int;   (** live-connection cap, default 64 *)
  max_in_flight : int;
      (** in-flight request budget — and the worker-pool size — default
          32; once this many admitted requests are executing, further
          requests are shed with a structured [Overloaded] error
          (carrying a retry-after hint) instead of queueing behind the
          busy handlers. 0 = unlimited (a pool of 32 with no shedding). *)
  read_timeout : float;    (** per-read seconds, 0 = no timeout *)
  write_timeout : float;   (** per-write seconds, 0 = no timeout *)
  wrap : (Transport.t -> Transport.t) option;
      (** interpose on every connection's byte stream (e.g. {!Chaos.wrap}
          for fault-injection tests); [None] = plain socket I/O *)
}

val default_config : config

(** Aggregate request metrics, updated under the server's lock. Latency
    is measured from decode start to response write completion; request
    and error counts are recorded just before the response frame goes
    out. *)
type stats = {
  mutable connections_accepted : int;
  mutable requests : int;         (** frames decoded and answered *)
  mutable errors : int;
      (** responses that were [Wire.Error] or [Unsupported_version] *)
  mutable shed : int;             (** requests refused by the load shedder *)
  mutable total_latency : float;  (** seconds summed over all requests *)
  mutable max_latency : float;    (** slowest single request, seconds *)
  mutable admitted : int;         (** requests that reached the handler *)
  mutable admitted_latency : float;
      (** seconds summed over admitted requests only — the basis of the
          shed retry-after hint, so near-instant shed answers cannot drag
          the hint toward its floor under sustained overload *)
}

type t

val start :
  ?config:config ->
  handler:(Wire.header -> Wire.request -> Wire.response) ->
  unit ->
  t
(** Bind, listen, and spawn the accept thread. Raises
    {!Mope_error.Error} if the address cannot be bound. Ignores [SIGPIPE]
    process-wide so peer disconnects surface as [EPIPE]. *)

val port : t -> int
(** The actual bound port (useful with [config.port = 0]). *)

val stats : t -> stats
(** A snapshot copy; safe to read while the server runs. *)

val active_connections : t -> int

val in_flight : t -> int
(** Requests currently inside the handler (bounded by [max_in_flight]). *)

val shutdown : t -> unit
(** Graceful stop: close the listener, shut down live connection sockets
    (unblocking their readers), and join every thread. Idempotent. *)

(** Concurrent TCP front-end for the trusted proxy.

    A thread-per-connection server over [Unix] sockets: one accept thread
    plus one thread per live client, suiting the paper's deployment shape
    (few long-lived client connections funnelling many queries through the
    proxy). The accept loop applies backpressure — when
    [max_connections] clients are live it stops accepting and lets the
    kernel backlog absorb the burst — and a graceful {!shutdown} stops
    accepting, unblocks in-flight readers, and waits for every connection
    thread to drain.

    The server is transport only: a [handler] turns each decoded
    {!Wire.request} (with its {!Wire.header} — trace id and session token)
    into a {!Wire.response}. Handler exceptions become structured
    [Wire.Error] responses, never crashes; malformed frames get a
    [Bad_frame] error reply and the connection is closed (the stream
    offset can no longer be trusted); frames from a peer speaking another
    protocol version get the structured {!Wire.Unsupported_version}
    answer before the drop. The handler runs on connection threads
    concurrently — it must do its own locking (see {!Service}). *)

type config = {
  host : string;           (** bind address, default ["127.0.0.1"] *)
  port : int;              (** 0 picks an ephemeral port (see {!port}) *)
  backlog : int;           (** listen(2) backlog, default 16 *)
  max_connections : int;   (** live-connection cap, default 64 *)
  max_in_flight : int;
      (** in-flight request budget, default 32; once this many requests are
          inside the handler, further requests are shed with a structured
          [Overloaded] error (carrying a retry-after hint) instead of
          queueing behind the busy handlers. 0 = unlimited. *)
  read_timeout : float;    (** per-read seconds, 0 = no timeout *)
  write_timeout : float;   (** per-write seconds, 0 = no timeout *)
  wrap : (Transport.t -> Transport.t) option;
      (** interpose on every connection's byte stream (e.g. {!Chaos.wrap}
          for fault-injection tests); [None] = plain socket I/O *)
}

val default_config : config

(** Aggregate request metrics, updated under the server's lock. *)
type stats = {
  mutable connections_accepted : int;
  mutable requests : int;         (** frames decoded and answered *)
  mutable errors : int;           (** responses that were [Wire.Error] *)
  mutable shed : int;             (** requests refused by the load shedder *)
  mutable total_latency : float;  (** seconds summed over requests *)
  mutable max_latency : float;    (** slowest single request, seconds *)
}

type t

val start :
  ?config:config ->
  handler:(Wire.header -> Wire.request -> Wire.response) ->
  unit ->
  t
(** Bind, listen, and spawn the accept thread. Raises
    {!Mope_error.Error} if the address cannot be bound. Ignores [SIGPIPE]
    process-wide so peer disconnects surface as [EPIPE]. *)

val port : t -> int
(** The actual bound port (useful with [config.port = 0]). *)

val stats : t -> stats
(** A snapshot copy; safe to read while the server runs. *)

val active_connections : t -> int

val in_flight : t -> int
(** Requests currently inside the handler (bounded by [max_in_flight]). *)

val shutdown : t -> unit
(** Graceful stop: close the listener, shut down live connection sockets
    (unblocking their readers), and join every thread. Idempotent. *)

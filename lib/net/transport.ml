type t = {
  read : bytes -> int -> int -> int;
  write : bytes -> int -> int -> int;
  close : unit -> unit;
}

let of_fd fd =
  { read = (fun buf pos len -> Unix.read fd buf pos len);
    write = (fun buf pos len -> Unix.write fd buf pos len);
    close = (fun () -> try Unix.close fd with Unix.Unix_error _ -> ()) }

let of_strings chunks =
  let remaining = ref chunks in
  let rec read buf pos len =
    match !remaining with
    | [] -> 0
    | "" :: rest ->
      remaining := rest;
      read buf pos len
    | chunk :: rest ->
      let n = Int.min len (String.length chunk) in
      Bytes.blit_string chunk 0 buf pos n;
      remaining :=
        (if n = String.length chunk then rest
         else String.sub chunk n (String.length chunk - n) :: rest);
      n
  in
  { read; write = (fun _ _ len -> len); close = (fun () -> remaining := []) }

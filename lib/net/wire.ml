open Mope_db

exception Protocol_error of string

exception Version_mismatch of { peer_version : int }

let fail fmt = Printf.ksprintf (fun msg -> raise (Protocol_error msg)) fmt

let version = 8

let max_frame = 16 * 1024 * 1024

(* Trace ids ride in every request header; bounding them keeps a hostile
   header from smuggling bulk data into server-side trace storage. *)
let max_trace_id = 64

(* Client-minted request ids (v6) bound [Apply] dedup-table entries the
   same way. *)
let max_request_id = 64

(* Session tokens (v7) ride in the request header next to the trace id;
   tenant ids key registry lookups and metric labels. Both are bounded so
   a hostile header cannot smuggle bulk data into session or label
   storage. Nonces and MACs are hex renderings of at most 32 bytes. *)
let max_session = 64

let max_tenant_id = 64

let max_mac = 128

type counters = {
  client_queries : int;
  real_pieces : int;
  fake_queries : int;
  server_requests : int;
  rows_fetched : int;
  rows_delivered : int;
  plan_cache_hits : int;
  plan_cache_misses : int;
  segment_cache_hits : int;
  segment_cache_misses : int;
}

type stats = {
  metrics_text : string;
  metrics_json : string;
  traces : Mope_obs.Trace.dump list;
}

type header = { trace_id : string; session : string; req_id : int }

let no_header = { trace_id = ""; session = ""; req_id = 0 }

type request =
  | Ping
  | Query of {
      sql : string;
      date_column : string;
      date_lo : Date.t;
      date_hi : Date.t;
    }
  | Get_counters
  | Get_stats
  | Fetch of { sql : string; epoch : int }
  | Apply of { sql : string; epoch : int; request_id : string }
  | Wal_since of { from_pos : int; max_bytes : int }
  | Fence of { epoch : int }
  | Open_session of { tenant : string }
  | Authenticate of { tenant : string; nonce : string; mac : string }
  | Rotate of { tenant : string; status_only : bool }

type error_code =
  | Bad_frame
  | Unsupported
  | Exec_failed
  | Overloaded
  | Internal
  | Fenced
  | Auth_failed
  | Unknown_tenant

type response =
  | Pong
  | Rows of Exec.result
  | Counters of counters
  | Stats of stats
  | Applied of { wal_pos : int }
  | Wal_chunk of {
      resync : bool;
      records : string list;
      next_pos : int;
      end_pos : int;
    }
  | Epoch_state of { epoch : int }
  | Session_challenge of { nonce : string }
  | Session_ok of { token : string }
  | Rotation of {
      state : string;
      generation : int;
      rows_moved : int;
      rows_total : int;
    }
  | Unsupported_version of { server_version : int }
  | Error of {
      code : error_code;
      message : string;
      query : string option;
      retry_after : float option;
    }

let error_code_to_string = function
  | Bad_frame -> "bad-frame"
  | Unsupported -> "unsupported"
  | Exec_failed -> "exec-failed"
  | Overloaded -> "overloaded"
  | Internal -> "internal"
  | Fenced -> "fenced"
  | Auth_failed -> "auth-failed"
  | Unknown_tenant -> "unknown-tenant"

(* ------------------------------------------------------------------ *)
(* Primitive encoders (big-endian, same conventions as Storage). *)

let put_int64 buf v =
  for byte = 0 to 7 do
    let shift = 8 * (7 - byte) in
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v shift) 0xFFL)))
  done

let put_int buf v = put_int64 buf (Int64.of_int v)

let put_string buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

let put_string_opt buf = function
  | None -> Buffer.add_char buf '\x00'
  | Some s ->
    Buffer.add_char buf '\x01';
    put_string buf s

let put_float_opt buf = function
  | None -> Buffer.add_char buf '\x00'
  | Some f ->
    Buffer.add_char buf '\x01';
    put_int64 buf (Int64.bits_of_float f)

let put_value buf = function
  | Value.Null -> Buffer.add_char buf '\x00'
  | Value.Bool b ->
    Buffer.add_char buf '\x01';
    Buffer.add_char buf (if b then '\x01' else '\x00')
  | Value.Int i ->
    Buffer.add_char buf '\x02';
    put_int buf i
  | Value.Float f ->
    Buffer.add_char buf '\x03';
    put_int64 buf (Int64.bits_of_float f)
  | Value.Str s ->
    Buffer.add_char buf '\x04';
    put_string buf s
  | Value.Date d ->
    Buffer.add_char buf '\x05';
    put_int buf d

(* ------------------------------------------------------------------ *)
(* Primitive decoders over a cursor. *)

type cursor = { data : string; mutable pos : int }

(* Overflow-safe: [cur.pos + n] could wrap for a hostile 62-bit length. *)
let need cur n =
  if n < 0 || n > String.length cur.data - cur.pos then fail "truncated payload"

let get_byte cur =
  need cur 1;
  let b = Char.code cur.data.[cur.pos] in
  cur.pos <- cur.pos + 1;
  b

let get_int64 cur =
  need cur 8;
  let v = ref 0L in
  for _ = 1 to 8 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (get_byte cur))
  done;
  !v

let get_int cur =
  let v = get_int64 cur in
  let i = Int64.to_int v in
  if Int64.of_int i <> v then fail "integer out of range";
  i

let get_nat cur =
  let v = get_int cur in
  if v < 0 then fail "negative size";
  v

let get_string cur =
  let len = get_nat cur in
  need cur len;
  let s = String.sub cur.data cur.pos len in
  cur.pos <- cur.pos + len;
  s

let get_string_opt cur =
  match get_byte cur with
  | 0 -> None
  | 1 -> Some (get_string cur)
  | n -> fail "bad option tag %d" n

let get_float_opt cur =
  match get_byte cur with
  | 0 -> None
  | 1 -> Some (Int64.float_of_bits (get_int64 cur))
  | n -> fail "bad option tag %d" n

let get_value cur =
  match get_byte cur with
  | 0 -> Value.Null
  | 1 -> Value.Bool (get_byte cur = 1)
  | 2 -> Value.Int (get_int cur)
  | 3 -> Value.Float (Int64.float_of_bits (get_int64 cur))
  | 4 -> Value.Str (get_string cur)
  | 5 -> Value.Date (get_int cur)
  | n -> fail "unknown value tag %d" n

(* ------------------------------------------------------------------ *)
(* Message tags. Requests live below 0x80, responses at or above it. *)

let tag_ping = 0x01
let tag_query = 0x02
let tag_get_counters = 0x03
let tag_get_stats = 0x04
let tag_fetch = 0x05
let tag_apply = 0x06
let tag_wal_since = 0x07
let tag_fence = 0x08
let tag_open_session = 0x09
let tag_authenticate = 0x0A
let tag_rotate = 0x0B
let tag_pong = 0x81
let tag_rows = 0x82
let tag_counters = 0x83
let tag_stats = 0x84
let tag_applied = 0x85
let tag_wal_chunk = 0x86
let tag_epoch_state = 0x87
let tag_session_challenge = 0x88
let tag_session_ok = 0x89
let tag_rotation = 0x8A
let tag_unsupported_version = 0xBE
let tag_error = 0xBF

let error_code_tag = function
  | Bad_frame -> 1
  | Unsupported -> 2
  | Exec_failed -> 3
  | Overloaded -> 4
  | Internal -> 5
  | Fenced -> 6
  | Auth_failed -> 7
  | Unknown_tenant -> 8

let error_code_of_tag = function
  | 1 -> Bad_frame
  | 2 -> Unsupported
  | 3 -> Exec_failed
  | 4 -> Overloaded
  | 5 -> Internal
  | 6 -> Fenced
  | 7 -> Auth_failed
  | 8 -> Unknown_tenant
  | n -> fail "unknown error code %d" n

let payload tag body =
  let buf = Buffer.create 256 in
  Buffer.add_char buf (Char.chr version);
  Buffer.add_char buf (Char.chr tag);
  body buf;
  Buffer.contents buf

(* [tag_unsupported_version] is the one version-independent message: it is
   exactly what a peer speaking the wrong version needs to be able to read,
   so its decode is admitted under any version byte and its body layout
   (a single integer) is frozen forever. Every other tag is gated on an
   exact version match; the mismatch raises [Version_mismatch] — not
   [Protocol_error] — so a server can answer with the structured response
   instead of a generic [Bad_frame]. *)
let open_payload data =
  let cur = { data; pos = 0 } in
  let v = get_byte cur in
  let tag = get_byte cur in
  if v <> version && tag <> tag_unsupported_version then
    raise (Version_mismatch { peer_version = v });
  (tag, cur)

let close_payload cur =
  if cur.pos <> String.length cur.data then fail "trailing bytes after message"

(* ------------------------------------------------------------------ *)
(* Requests. The request header rides between the tag and the body: the
   v3 trace id (possibly empty), then the v7 session token (empty until
   the client has completed the [Open_session]/[Authenticate] handshake),
   then the v8 request id, so every request kind can be correlated with
   the server-side span tree it produces, attributed to the tenant it
   runs as, and — when pipelined — matched with its response. A request
   id of 0 means "unassigned" (a lockstep client awaiting one response
   at a time); pipelining clients assign ids starting from 1. Since v8
   every response except the frozen [Unsupported_version] echoes the
   request id between its tag and body. *)

let check_trace_id tid =
  if String.length tid > max_trace_id then
    fail "trace id of %d bytes exceeds %d" (String.length tid) max_trace_id

let check_request_id rid =
  if String.length rid > max_request_id then
    fail "request id of %d bytes exceeds %d" (String.length rid) max_request_id

let check_session tok =
  if String.length tok > max_session then
    fail "session token of %d bytes exceeds %d" (String.length tok) max_session

let check_tenant tid =
  if String.length tid > max_tenant_id then
    fail "tenant id of %d bytes exceeds %d" (String.length tid) max_tenant_id

let check_mac label s =
  if String.length s > max_mac then
    fail "%s of %d bytes exceeds %d" label (String.length s) max_mac

(* Fencing epochs are small positive integers; 0 means "unfenced". A
   negative epoch can only be malice or corruption. *)
let check_epoch epoch = if epoch < 0 then fail "negative epoch %d" epoch

(* Request ids are client-minted correlation numbers; 0 = unassigned. *)
let check_req_id id = if id < 0 then fail "negative request id %d" id

let payload_req header tag body =
  check_trace_id header.trace_id;
  check_session header.session;
  check_req_id header.req_id;
  payload tag (fun buf ->
      put_string buf header.trace_id;
      put_string buf header.session;
      put_int buf header.req_id;
      body buf)

let encode_request ?(trace_id = "") ?(session = "") ?(req_id = 0) req =
  let header = { trace_id; session; req_id } in
  match req with
  | Ping -> payload_req header tag_ping (fun _ -> ())
  | Query { sql; date_column; date_lo; date_hi } ->
    payload_req header tag_query (fun buf ->
        put_string buf sql;
        put_string buf date_column;
        put_int buf date_lo;
        put_int buf date_hi)
  | Get_counters -> payload_req header tag_get_counters (fun _ -> ())
  | Get_stats -> payload_req header tag_get_stats (fun _ -> ())
  | Fetch { sql; epoch } ->
    check_epoch epoch;
    payload_req header tag_fetch (fun buf ->
        put_string buf sql;
        put_int buf epoch)
  | Apply { sql; epoch; request_id } ->
    check_epoch epoch;
    check_request_id request_id;
    payload_req header tag_apply (fun buf ->
        put_string buf sql;
        put_int buf epoch;
        put_string buf request_id)
  | Wal_since { from_pos; max_bytes } ->
    payload_req header tag_wal_since (fun buf ->
        put_int buf from_pos;
        put_int buf max_bytes)
  | Fence { epoch } ->
    check_epoch epoch;
    payload_req header tag_fence (fun buf -> put_int buf epoch)
  | Open_session { tenant } ->
    check_tenant tenant;
    payload_req header tag_open_session (fun buf -> put_string buf tenant)
  | Authenticate { tenant; nonce; mac } ->
    check_tenant tenant;
    check_mac "nonce" nonce;
    check_mac "mac" mac;
    payload_req header tag_authenticate (fun buf ->
        put_string buf tenant;
        put_string buf nonce;
        put_string buf mac)
  | Rotate { tenant; status_only } ->
    check_tenant tenant;
    payload_req header tag_rotate (fun buf ->
        put_string buf tenant;
        Buffer.add_char buf (if status_only then '\x01' else '\x00'))

let decode_request data =
  let tag, cur = open_payload data in
  let trace_id = get_string cur in
  check_trace_id trace_id;
  let session = get_string cur in
  check_session session;
  let req_id = get_nat cur in
  let req =
    if tag = tag_ping then Ping
    else if tag = tag_query then begin
      let sql = get_string cur in
      let date_column = get_string cur in
      let date_lo = get_int cur in
      let date_hi = get_int cur in
      Query { sql; date_column; date_lo; date_hi }
    end
    else if tag = tag_get_counters then Get_counters
    else if tag = tag_get_stats then Get_stats
    else if tag = tag_fetch then begin
      let sql = get_string cur in
      let epoch = get_nat cur in
      Fetch { sql; epoch }
    end
    else if tag = tag_apply then begin
      let sql = get_string cur in
      let epoch = get_nat cur in
      let request_id = get_string cur in
      check_request_id request_id;
      Apply { sql; epoch; request_id }
    end
    else if tag = tag_wal_since then begin
      let from_pos = get_nat cur in
      let max_bytes = get_nat cur in
      Wal_since { from_pos; max_bytes }
    end
    else if tag = tag_fence then Fence { epoch = get_nat cur }
    else if tag = tag_open_session then begin
      let tenant = get_string cur in
      check_tenant tenant;
      Open_session { tenant }
    end
    else if tag = tag_authenticate then begin
      let tenant = get_string cur in
      check_tenant tenant;
      let nonce = get_string cur in
      check_mac "nonce" nonce;
      let mac = get_string cur in
      check_mac "mac" mac;
      Authenticate { tenant; nonce; mac }
    end
    else if tag = tag_rotate then begin
      let tenant = get_string cur in
      check_tenant tenant;
      let status_only =
        match get_byte cur with
        | 0 -> false
        | 1 -> true
        | n -> fail "bad status_only flag %d" n
      in
      Rotate { tenant; status_only }
    end
    else fail "unknown request tag 0x%02x" tag
  in
  close_payload cur;
  ({ trace_id; session; req_id }, req)

(* ------------------------------------------------------------------ *)
(* Responses. Since v8 every response carries a one-field header — the
   echoed request id — between its tag and body, so a pipelining client
   can match out-of-order completions to the requests it has in flight.
   [Unsupported_version] is the lone exception: its body layout is frozen
   at the v7 shape (a bare integer) so peers of any version can read it,
   and it answers a request whose header the server could not necessarily
   decode anyway. *)

let payload_resp req_id tag body =
  check_req_id req_id;
  payload tag (fun buf ->
      put_int buf req_id;
      body buf)

let encode_response ?(req_id = 0) resp =
  match resp with
  | Pong -> payload_resp req_id tag_pong (fun _ -> ())
  | Rows result ->
    payload_resp req_id tag_rows (fun buf ->
        put_int buf (List.length result.Exec.columns);
        List.iter (put_string buf) result.Exec.columns;
        put_int buf (List.length result.Exec.rows);
        List.iter
          (fun row ->
            put_int buf (Array.length row);
            Array.iter (put_value buf) row)
          result.Exec.rows)
  | Counters c ->
    payload_resp req_id tag_counters (fun buf ->
        put_int buf c.client_queries;
        put_int buf c.real_pieces;
        put_int buf c.fake_queries;
        put_int buf c.server_requests;
        put_int buf c.rows_fetched;
        put_int buf c.rows_delivered;
        put_int buf c.plan_cache_hits;
        put_int buf c.plan_cache_misses;
        put_int buf c.segment_cache_hits;
        put_int buf c.segment_cache_misses)
  | Stats s ->
    payload_resp req_id tag_stats (fun buf ->
        put_string buf s.metrics_text;
        put_string buf s.metrics_json;
        put_int buf (List.length s.traces);
        List.iter
          (fun (d : Mope_obs.Trace.dump) ->
            put_string buf d.Mope_obs.Trace.id;
            put_int buf (List.length d.Mope_obs.Trace.spans);
            List.iter
              (fun (sp : Mope_obs.Trace.span) ->
                put_string buf sp.Mope_obs.Trace.name;
                put_int buf sp.Mope_obs.Trace.depth;
                put_int64 buf (Int64.bits_of_float sp.Mope_obs.Trace.start_us);
                put_int64 buf (Int64.bits_of_float sp.Mope_obs.Trace.dur_us);
                put_int buf (List.length sp.Mope_obs.Trace.items);
                List.iter
                  (fun (k, n) ->
                    put_string buf k;
                    put_int buf n)
                  sp.Mope_obs.Trace.items)
              d.Mope_obs.Trace.spans)
          s.traces)
  | Applied { wal_pos } ->
    payload_resp req_id tag_applied (fun buf -> put_int buf wal_pos)
  | Epoch_state { epoch } ->
    payload_resp req_id tag_epoch_state (fun buf -> put_int buf epoch)
  | Session_challenge { nonce } ->
    payload_resp req_id tag_session_challenge (fun buf -> put_string buf nonce)
  | Session_ok { token } ->
    payload_resp req_id tag_session_ok (fun buf -> put_string buf token)
  | Rotation { state; generation; rows_moved; rows_total } ->
    payload_resp req_id tag_rotation (fun buf ->
        put_string buf state;
        put_int buf generation;
        put_int buf rows_moved;
        put_int buf rows_total)
  | Unsupported_version { server_version } ->
    (* Frozen v7 shape: no response header, readable under any version. *)
    payload tag_unsupported_version (fun buf -> put_int buf server_version)
  | Wal_chunk { resync; records; next_pos; end_pos } ->
    payload_resp req_id tag_wal_chunk (fun buf ->
        Buffer.add_char buf (if resync then '\x01' else '\x00');
        put_int buf (List.length records);
        List.iter (put_string buf) records;
        put_int buf next_pos;
        put_int buf end_pos)
  | Error { code; message; query; retry_after } ->
    payload_resp req_id tag_error (fun buf ->
        Buffer.add_char buf (Char.chr (error_code_tag code));
        put_string buf message;
        put_string_opt buf query;
        put_float_opt buf retry_after)

let decode_response data =
  let tag, cur = open_payload data in
  (* The echoed request id (v8). [Unsupported_version] predates it and
     stays header-less so any-version peers can read it; report it as
     id 0, the "unassigned" id. *)
  let req_id = if tag = tag_unsupported_version then 0 else get_nat cur in
  let resp =
    (* A count must be plausible for the bytes that remain — each column
       name and each row costs at least an 8-byte length prefix, each value
       at least its tag byte — or a corrupt count would reach [Array.make]/
       [List.init] and allocate unboundedly before the payload runs dry. *)
    let plausible what n per =
      if n > (String.length cur.data - cur.pos) / per then
        fail "implausible %s count %d" what n
    in
    if tag = tag_pong then Pong
    else if tag = tag_rows then begin
      let n_cols = get_nat cur in
      plausible "column" n_cols 8;
      let columns = List.init n_cols (fun _ -> get_string cur) in
      let n_rows = get_nat cur in
      plausible "row" n_rows 8;
      let rows =
        List.init n_rows (fun _ ->
            let arity = get_nat cur in
            plausible "value" arity 1;
            (* Explicit loop: Array.init's evaluation order is unspecified. *)
            let row = Array.make arity Value.Null in
            for i = 0 to arity - 1 do
              row.(i) <- get_value cur
            done;
            row)
      in
      Rows { Exec.columns; rows }
    end
    else if tag = tag_counters then begin
      let client_queries = get_int cur in
      let real_pieces = get_int cur in
      let fake_queries = get_int cur in
      let server_requests = get_int cur in
      let rows_fetched = get_int cur in
      let rows_delivered = get_int cur in
      let plan_cache_hits = get_int cur in
      let plan_cache_misses = get_int cur in
      let segment_cache_hits = get_int cur in
      let segment_cache_misses = get_int cur in
      Counters
        { client_queries; real_pieces; fake_queries; server_requests;
          rows_fetched; rows_delivered; plan_cache_hits; plan_cache_misses;
          segment_cache_hits; segment_cache_misses }
    end
    else if tag = tag_stats then begin
      let metrics_text = get_string cur in
      let metrics_json = get_string cur in
      let n_traces = get_nat cur in
      plausible "trace" n_traces 16;
      let traces =
        List.init n_traces (fun _ ->
            let id = get_string cur in
            let n_spans = get_nat cur in
            plausible "span" n_spans 32;
            let spans =
              List.init n_spans (fun _ ->
                  let name = get_string cur in
                  let depth = get_int cur in
                  let start_us = Int64.float_of_bits (get_int64 cur) in
                  let dur_us = Int64.float_of_bits (get_int64 cur) in
                  let n_items = get_nat cur in
                  plausible "item" n_items 16;
                  let items =
                    List.init n_items (fun _ ->
                        let k = get_string cur in
                        let n = get_int cur in
                        (k, n))
                  in
                  { Mope_obs.Trace.name; depth; start_us; dur_us; items })
            in
            { Mope_obs.Trace.id; spans })
      in
      Stats { metrics_text; metrics_json; traces }
    end
    else if tag = tag_applied then Applied { wal_pos = get_nat cur }
    else if tag = tag_epoch_state then Epoch_state { epoch = get_nat cur }
    else if tag = tag_session_challenge then begin
      let nonce = get_string cur in
      check_mac "nonce" nonce;
      Session_challenge { nonce }
    end
    else if tag = tag_session_ok then begin
      let token = get_string cur in
      check_session token;
      Session_ok { token }
    end
    else if tag = tag_rotation then begin
      let state = get_string cur in
      let generation = get_nat cur in
      let rows_moved = get_nat cur in
      let rows_total = get_nat cur in
      Rotation { state; generation; rows_moved; rows_total }
    end
    else if tag = tag_unsupported_version then
      Unsupported_version { server_version = get_nat cur }
    else if tag = tag_wal_chunk then begin
      let resync =
        match get_byte cur with
        | 0 -> false
        | 1 -> true
        | n -> fail "bad resync flag %d" n
      in
      let n_records = get_nat cur in
      plausible "record" n_records 8;
      let records = List.init n_records (fun _ -> get_string cur) in
      let next_pos = get_nat cur in
      let end_pos = get_nat cur in
      Wal_chunk { resync; records; next_pos; end_pos }
    end
    else if tag = tag_error then begin
      let code = error_code_of_tag (get_byte cur) in
      let message = get_string cur in
      let query = get_string_opt cur in
      let retry_after = get_float_opt cur in
      Error { code; message; query; retry_after }
    end
    else fail "unknown response tag 0x%02x" tag
  in
  close_payload cur;
  (req_id, resp)

(* ------------------------------------------------------------------ *)
(* Framed I/O over a Transport (short reads/writes handled here). *)

let rec write_all (io : Transport.t) bytes pos len =
  if len > 0 then
    match io.Transport.write bytes pos len with
    | n -> write_all io bytes (pos + n) (len - n)
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> write_all io bytes pos len

let put_u32_bytes frame at v =
  Bytes.set frame at (Char.chr ((v lsr 24) land 0xFF));
  Bytes.set frame (at + 1) (Char.chr ((v lsr 16) land 0xFF));
  Bytes.set frame (at + 2) (Char.chr ((v lsr 8) land 0xFF));
  Bytes.set frame (at + 3) (Char.chr (v land 0xFF))

let write_frame_t io data =
  let len = String.length data in
  if len > max_frame then
    invalid_arg (Printf.sprintf "Wire.write_frame: payload of %d bytes exceeds max_frame" len);
  let frame = Bytes.create (8 + len) in
  put_u32_bytes frame 0 len;
  (* Payload checksum: a TCP stream is reliable but the chaos model (and
     real proxies behind middleboxes) is not — a flipped bit inside a
     string value would otherwise decode cleanly into wrong data. *)
  put_u32_bytes frame 4 (Int32.to_int (Crc32.digest data) land 0xFFFFFFFF);
  Bytes.blit_string data 0 frame 8 len;
  write_all io frame 0 (8 + len)

(* Read exactly [len] bytes; [eof_ok] only applies before the first byte. *)
let read_exact (io : Transport.t) len ~eof_ok =
  let bytes = Bytes.create len in
  let pos = ref 0 in
  while !pos < len do
    match io.Transport.read bytes !pos (len - !pos) with
    | 0 -> if !pos = 0 && eof_ok then raise End_of_file else fail "connection closed mid-frame"
    | n -> pos := !pos + n
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  Bytes.unsafe_to_string bytes

let read_frame_t io =
  let header = read_exact io 8 ~eof_ok:true in
  let byte i = Char.code header.[i] in
  let u32 at = (byte at lsl 24) lor (byte (at + 1) lsl 16)
               lor (byte (at + 2) lsl 8) lor byte (at + 3) in
  let len = u32 0 in
  let crc = Int32.of_int (u32 4) in
  if len < 2 then fail "frame too short (%d bytes)" len;
  if len > max_frame then fail "frame of %d bytes exceeds max_frame" len;
  let data = read_exact io len ~eof_ok:false in
  if Crc32.digest data <> crc then fail "frame checksum mismatch";
  data

let write_frame fd data = write_frame_t (Transport.of_fd fd) data

let read_frame fd = read_frame_t (Transport.of_fd fd)

(** Ambient per-request tracing.

    The client mints a trace id ({!mint_id}) and sends it in the wire v3
    request header; the server wraps the handler in {!run}, which installs a
    trace context for the current thread. Any code on that thread — service
    dispatch, query exec, OPE walks, storage, WAL — can then open named
    spans with {!with_span} or attach counts with {!add_item}, without
    threading a context value through every signature. Completed traces
    (span trees with durations) land in a fixed-size ring buffer served by
    the [Stats] wire op.

    When tracing is disabled or no trace is active, {!with_span} and
    {!add_item} cost one atomic load plus a branch.

    Secret hygiene: span names and item keys are caller-chosen constants;
    mope-lint registers this module as a secret-flow sink so secret-named
    values cannot appear in any argument. *)

type span = {
  name : string;
  depth : int;  (** 0 = the root ["request"] span *)
  start_us : float;  (** wall-clock microseconds *)
  dur_us : float;
  items : (string * int) list;  (** e.g. [("hgd_draws", 12)] *)
}

type dump = { id : string; spans : span list }
(** Spans in pre-order (sorted by start time, parents before children). A
    trace that overflowed the per-trace span cap carries a trailing
    [dropped_spans] span with the dropped count. *)

val set_enabled : bool -> unit
(** Off by default; {!run} is a transparent pass-through while disabled. *)

val enabled : unit -> bool

val run : id:string -> (unit -> 'a) -> 'a
(** Execute the thunk under a fresh trace context rooted at a ["request"]
    span. Pass-through when disabled, when [id] is empty, or when the
    current thread already runs a trace (the outer trace wins). The
    completed trace is pushed to the ring buffer even if the thunk
    raises. *)

val with_span : string -> (unit -> 'a) -> 'a
(** Open a child span around the thunk; no-op wrapper when no trace is
    active on this thread. *)

val record_span : string -> dur_us:float -> unit
(** Record an already-measured span (e.g. frame decode, timed before the
    trace id was known) ending now. *)

val add_item : string -> int -> unit
(** Add [n] to a named counter on the innermost open span. *)

val recent : unit -> dump list
(** Completed traces, newest first (ring buffer, capacity 64). *)

val clear_recent : unit -> unit

val mint_id : Mope_stats.Rng.t -> string
(** 16 hex chars drawn from the caller's deterministic RNG. *)

val render : dump -> string
(** Human-readable tree: one line per span, indented by depth, with
    duration and items. *)

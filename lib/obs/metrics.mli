(** Process-wide metrics registry: counters, gauges, and log-bucketed latency
    histograms, exposed as Prometheus text and JSON.

    Instrumentation is meant to stay compiled into hot paths permanently:
    while the registry is disabled (the default) every mutation —
    {!inc}, {!gauge_set}, {!observe}, {!time} — costs a single atomic load
    plus a branch and performs no allocation. When enabled, counters and
    gauges are lock-free atomics and histograms are lock-striped by thread
    id so concurrent observers rarely contend.

    Secret hygiene: label keys are validated at registration against a
    denylist of secret-ish names (key/offset/plaintext/...); the static
    mope-lint secret-flow rule additionally treats this module as a sink, so
    secret-named values cannot reach a metric either statically or at
    runtime.

    Cardinality hygiene: labels whose values come from the outside world
    (tenant ids above all) could mint unbounded metric instances. The
    registry caps the distinct label-value sets per family
    ({!set_max_label_sets}); registering beyond the cap evicts the family's
    oldest labeled instance — its handle keeps working but no longer
    renders — and bumps [mope_metrics_labels_dropped_total]. *)

type counter
type gauge
type histogram

val set_enabled : bool -> unit
(** Turn the registry on or off globally. Off (the default) makes every
    mutation a no-op; reads and rendering still work. *)

val enabled : unit -> bool

val default_buckets : float array
(** Latency bucket upper bounds in seconds: [1e-6 · 2^i] for [i = 0..21]
    (1µs up to ~4.2s). *)

(** {1 Registration}

    Registration is idempotent: the same (name, labels) pair returns the
    existing instance. Names must match [[a-z_][a-z0-9_]*]. Raises
    [Invalid_argument] on a malformed name, a secret-named label key, or a
    kind clash with an already-registered metric. *)

val counter : ?help:string -> string -> ?labels:(string * string) list -> unit -> counter
val gauge : ?help:string -> string -> ?labels:(string * string) list -> unit -> gauge

val histogram :
  ?help:string ->
  ?buckets:float array ->
  string ->
  ?labels:(string * string) list ->
  unit ->
  histogram
(** [buckets] are ascending finite upper bounds (default
    {!default_buckets}); an implicit overflow bucket is appended. *)

(** {1 Label-cardinality guard} *)

val set_max_label_sets : int -> unit
(** Cap (≥ 1) on distinct label-value sets per metric family; default 64.
    Lowering the cap affects future registrations only. *)

val max_label_sets : unit -> int

val labels_dropped : unit -> int
(** Evictions so far, also exported as
    [mope_metrics_labels_dropped_total]. *)

(** {1 Hot-path mutation} *)

val inc : ?by:int -> counter -> unit
val gauge_set : gauge -> int -> unit
val gauge_add : gauge -> int -> unit

val observe : histogram -> float -> unit
(** Record one sample (seconds, for latency histograms). *)

val time : histogram -> (unit -> 'a) -> 'a
(** Run the thunk and observe its wall-clock duration; when the registry is
    disabled the thunk runs with no clock reads at all. *)

(** {1 Reads} *)

val counter_value : counter -> int
val gauge_value : gauge -> int
val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val histogram_quantile : histogram -> float -> float
(** Estimated quantile ([q ∈ [0,1]]) via
    [Mope_stats.Summary.quantile_of_buckets]. *)

val reset_all : unit -> unit
(** Zero every registered metric (registrations survive). Test helper. *)

(** {1 Exposition} *)

val render_prometheus : unit -> string
(** Prometheus text exposition format: [# HELP]/[# TYPE] per family,
    [_bucket{le=...}]/[_sum]/[_count] for histograms. *)

val render_json : unit -> string
(** Compact JSON: counters/gauges with values, histograms with count, sum
    and p50/p95/p99 estimates. *)

(* Per-request tracing. A trace id minted by the client travels in the wire
   header; the server installs an ambient trace context for the handling
   thread ([run]) and instrumented code anywhere below it — service, exec,
   OPE, storage, WAL — opens named spans ([with_span]) or attaches counts
   ([add_item]) without any plumbing through intermediate signatures.

   Cost model: when no trace is active anywhere in the process,
   [with_span]/[add_item] are one atomic load plus a branch. Contexts are
   keyed by thread id in a mutex-guarded table; an atomic count of live
   contexts guards the fast path. Completed traces land in a fixed-size
   ring buffer that the Stats wire op drains. *)

type span = {
  name : string;
  depth : int;
  start_us : float;
  dur_us : float;
  items : (string * int) list;
}

type dump = { id : string; spans : span list }

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* Live (still-open) span. *)
type live = {
  l_name : string;
  l_depth : int;
  l_start_us : float;
  mutable l_items : (string * int) list;
}

type ctx = {
  trace_id : string;
  mutable stack : live list; (* open spans, innermost first *)
  mutable finished : span list; (* completed spans, any order *)
  mutable n_spans : int;
  mutable dropped : int;
}

(* Per-process trace registry: thread id -> active context. [active] counts
   live contexts so the common no-trace case never touches the mutex. *)
let active = Atomic.make 0
let contexts : (int, ctx) Hashtbl.t = Hashtbl.create 16
let contexts_lock = Mutex.create ()

let max_spans_per_trace = 512

let now_us () = Unix.gettimeofday () *. 1e6

let current_ctx () =
  if Atomic.get active = 0 then None
  else begin
    let tid = Thread.id (Thread.self ()) in
    Mutex.lock contexts_lock;
    let c = Hashtbl.find_opt contexts tid in
    Mutex.unlock contexts_lock;
    c
  end

(* ---------- ring buffer of completed traces ---------- *)

let ring_capacity = 64
let ring : dump option array = Array.make ring_capacity None
let ring_next = ref 0
let ring_lock = Mutex.create ()

let ring_push d =
  Mutex.lock ring_lock;
  ring.(!ring_next mod ring_capacity) <- Some d;
  incr ring_next;
  Mutex.unlock ring_lock

let recent () =
  Mutex.lock ring_lock;
  let n = !ring_next in
  let out = ref [] in
  (* Oldest-to-newest scan accumulates newest-first. *)
  let first = if n > ring_capacity then n - ring_capacity else 0 in
  for i = first to n - 1 do
    match ring.(i mod ring_capacity) with
    | Some d -> out := d :: !out
    | None -> ()
  done;
  Mutex.unlock ring_lock;
  !out

let clear_recent () =
  Mutex.lock ring_lock;
  Array.fill ring 0 ring_capacity None;
  ring_next := 0;
  Mutex.unlock ring_lock

(* ---------- span recording ---------- *)

let finish_live c (l : live) ~end_us =
  if c.n_spans >= max_spans_per_trace then c.dropped <- c.dropped + 1
  else begin
    c.n_spans <- c.n_spans + 1;
    c.finished <-
      { name = l.l_name; depth = l.l_depth; start_us = l.l_start_us;
        dur_us = Float.max 0.0 (end_us -. l.l_start_us);
        items = List.rev l.l_items }
      :: c.finished
  end

let with_span name f =
  match current_ctx () with
  | None -> f ()
  | Some c ->
    let l =
      { l_name = name; l_depth = List.length c.stack; l_start_us = now_us ();
        l_items = [] }
    in
    c.stack <- l :: c.stack;
    Fun.protect
      ~finally:(fun () ->
        (match c.stack with
         | top :: rest when top == l -> c.stack <- rest
         | _ -> () (* unbalanced pops only happen on exotic control flow *));
        finish_live c l ~end_us:(now_us ()))
      f

let record_span name ~dur_us =
  match current_ctx () with
  | None -> ()
  | Some c ->
    if c.n_spans >= max_spans_per_trace then c.dropped <- c.dropped + 1
    else begin
      c.n_spans <- c.n_spans + 1;
      let end_us = now_us () in
      c.finished <-
        { name; depth = List.length c.stack; start_us = end_us -. dur_us;
          dur_us = Float.max 0.0 dur_us; items = [] }
        :: c.finished
    end

let add_item name n =
  match current_ctx () with
  | None -> ()
  | Some c ->
    (match c.stack with
     | [] -> ()
     | l :: _ ->
       (match List.assoc_opt name l.l_items with
        | Some prev ->
          l.l_items <-
            (name, prev + n) :: List.remove_assoc name l.l_items
        | None -> l.l_items <- (name, n) :: l.l_items))

let finalize c =
  (* [record_span] back-dates already-measured work (e.g. frame decode, timed
     before the trace id was known), which can start before [run] installed
     the root. Stretch the root back over the earliest span so the root
     still covers the whole request and sorts first. *)
  let min_start =
    List.fold_left (fun m s -> Float.min m s.start_us) Float.infinity c.finished
  in
  let finished =
    List.map
      (fun s ->
        if s.depth = 0 && s.start_us > min_start then
          { s with start_us = min_start;
            dur_us = s.dur_us +. (s.start_us -. min_start) }
        else s)
      c.finished
  in
  (* Pre-order by start time; depth breaks ties so a parent sorts before a
     child opened in the same clock tick. *)
  let spans =
    List.sort
      (fun a b ->
        match Float.compare a.start_us b.start_us with
        | 0 -> Int.compare a.depth b.depth
        | n -> n)
      finished
  in
  let spans =
    if c.dropped > 0 then
      spans
      @ [ { name = "dropped_spans"; depth = 1; start_us = 0.0; dur_us = 0.0;
            items = [ ("count", c.dropped) ] } ]
    else spans
  in
  { id = c.trace_id; spans }

let run ~id f =
  if (not (Atomic.get enabled_flag)) || String.length id = 0 then f ()
  else begin
    let tid = Thread.id (Thread.self ()) in
    Mutex.lock contexts_lock;
    let already = Hashtbl.mem contexts tid in
    let c =
      if already then None
      else begin
        let c =
          { trace_id = id; stack = []; finished = []; n_spans = 0; dropped = 0 }
        in
        Hashtbl.replace contexts tid c;
        Atomic.incr active;
        Some c
      end
    in
    Mutex.unlock contexts_lock;
    match c with
    | None -> f () (* nested run on the same thread: keep the outer trace *)
    | Some c ->
      let root =
        { l_name = "request"; l_depth = 0; l_start_us = now_us ();
          l_items = [] }
      in
      c.stack <- [ root ];
      Fun.protect
        ~finally:(fun () ->
          c.stack <- [];
          finish_live c root ~end_us:(now_us ());
          Mutex.lock contexts_lock;
          Hashtbl.remove contexts tid;
          Atomic.decr active;
          Mutex.unlock contexts_lock;
          ring_push (finalize c))
        f
  end

(* ---------- ids and rendering ---------- *)

let mint_id rng =
  let w = Mope_stats.Rng.int64 rng in
  Printf.sprintf "%016Lx" w

let render d =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "trace %s\n" d.id);
  List.iter
    (fun s ->
      Buffer.add_string buf (String.make (2 * s.depth) ' ');
      Buffer.add_string buf (Printf.sprintf "%-16s %10.1fus" s.name s.dur_us);
      List.iter
        (fun (k, n) -> Buffer.add_string buf (Printf.sprintf "  %s=%d" k n))
        s.items;
      Buffer.add_char buf '\n')
    d.spans;
  Buffer.contents buf

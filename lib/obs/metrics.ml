(* Process-wide metrics registry: counters, gauges, and log-bucketed latency
   histograms. Designed so that instrumentation left compiled into hot paths
   costs one atomic load plus a branch while observability is disabled
   (the default), and stays thread-safe when enabled: counters and gauges
   are single atomics, histograms are lock-striped by thread id so
   concurrent observers rarely contend on the same mutex. *)

let enabled_flag = Atomic.make false
let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

(* ---------- naming and label hygiene ---------- *)

let valid_name s =
  String.length s > 0
  && (match s.[0] with 'a' .. 'z' | '_' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false)
       s

(* Label keys that name secrets are refused at registration time, mirroring
   the mope-lint secret-flow ident list: even if a caller slipped past the
   static pass (e.g. via an intermediate binding), the registry will not
   mint a metric dimension that invites plaintext or key material. *)
let secret_label_names =
  [ "key"; "keys"; "secret"; "secret_key"; "master_key"; "old_key"; "new_key";
    "mope_key"; "ope_key"; "offset"; "secret_offset"; "old_offset";
    "new_offset"; "plaintext"; "plaintexts" ]

let check_labels name labels =
  List.iter
    (fun (k, _) ->
      if not (valid_name k) then
        invalid_arg (Printf.sprintf "Metrics: bad label key %S on %s" k name);
      if List.mem k secret_label_names then
        invalid_arg
          (Printf.sprintf
             "Metrics: label key %S on %s names a secret; metrics must never \
              carry key/offset/plaintext material"
             k name))
    labels

let canonical_labels labels =
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) labels

(* ---------- metric instances ---------- *)

type counter = {
  c_name : string;
  c_help : string;
  c_labels : (string * string) list;
  c_value : int Atomic.t;
}

type gauge = {
  g_name : string;
  g_help : string;
  g_labels : (string * string) list;
  g_value : int Atomic.t;
}

type stripe = {
  s_lock : Mutex.t;
  s_counts : int array; (* one cell per bound + trailing overflow cell *)
  mutable s_sum : float;
  mutable s_count : int;
}

type histogram = {
  h_name : string;
  h_help : string;
  h_labels : (string * string) list;
  h_bounds : float array;
  h_stripes : stripe array;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let n_stripes = 8

(* Upper bounds in seconds: 1µs · 2^i, i = 0..21, topping out at ~4.2s —
   wide enough for a WAL fsync on slow storage, fine enough near the bottom
   to resolve a cached OPE lookup. Fixed boundaries keep observe() cheap
   (no rebucketing) and make scrapes mergeable across processes. *)
let default_buckets =
  Array.init 22 (fun i -> 1e-6 *. Float.of_int (1 lsl i))

(* ---------- registry ---------- *)

let registry : (string, metric) Hashtbl.t = Hashtbl.create 64
let registry_lock = Mutex.create ()

(* ---------- label-cardinality guard ----------

   A label whose values come from the outside world (tenant ids above all)
   can mint unbounded metric instances and blow up every scrape. The
   registry therefore caps the number of DISTINCT label-value sets per
   family: registering a fresh labeled instance beyond the cap evicts the
   family's oldest labeled instance from the registry (its handle keeps
   working but no longer renders) and bumps
   [mope_metrics_labels_dropped_total]. Unlabeled instances are never
   subject to the cap. *)

let max_label_sets_cap = Atomic.make 64

let set_max_label_sets n =
  if n < 1 then invalid_arg "Metrics.set_max_label_sets";
  Atomic.set max_label_sets_cap n

let max_label_sets () = Atomic.get max_label_sets_cap

(* family name -> labeled instance keys, oldest registration first *)
let family_label_sets : (string, string Queue.t) Hashtbl.t = Hashtbl.create 16

(* The drop counter is itself a registered metric, created at module end
   (after [counter] exists); evictions before that land in the raw atomic
   the counter is later seeded from. Drops are counted even while the
   registry is disabled: they are registry hygiene, not a hot path. *)
let dropped_counter : int Atomic.t option ref = ref None
let dropped_before_init = Atomic.make 0

let note_dropped () =
  match !dropped_counter with
  | Some cell -> ignore (Atomic.fetch_and_add cell 1)
  | None -> ignore (Atomic.fetch_and_add dropped_before_init 1)

(* Called under [registry_lock] just before inserting a fresh labeled
   instance. *)
let admit_label_set name ikey =
  let q =
    match Hashtbl.find_opt family_label_sets name with
    | Some q -> q
    | None ->
      let q = Queue.create () in
      Hashtbl.replace family_label_sets name q;
      q
  in
  if Queue.length q >= Atomic.get max_label_sets_cap then begin
    let oldest = Queue.pop q in
    Hashtbl.remove registry oldest;
    note_dropped ()
  end;
  Queue.push ikey q

let instance_key name labels =
  match labels with
  | [] -> name
  | labels ->
    name ^ "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
    ^ "}"

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

(* Registration is idempotent: asking for the same (name, labels) pair
   returns the existing instance, so modules can declare their metrics at
   module-init without coordinating. Re-registering under a different
   metric kind is a programming error and raises. *)
let register name labels build match_existing =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Metrics: bad metric name %S" name);
  check_labels name labels;
  let labels = canonical_labels labels in
  let ikey = instance_key name labels in
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () ->
      match Hashtbl.find_opt registry ikey with
      | Some existing ->
        (match match_existing existing with
         | Some v -> v
         | None ->
           invalid_arg
             (Printf.sprintf "Metrics: %s already registered as a %s" ikey
                (kind_name existing)))
      | None ->
        let v, m = build labels in
        if labels <> [] then admit_label_set name ikey;
        Hashtbl.replace registry ikey m;
        v)

let counter ?(help = "") name ?(labels = []) () =
  register name labels
    (fun labels ->
      let c = { c_name = name; c_help = help; c_labels = labels;
                c_value = Atomic.make 0 } in
      (c, Counter c))
    (function Counter c -> Some c | _ -> None)

let gauge ?(help = "") name ?(labels = []) () =
  register name labels
    (fun labels ->
      let g = { g_name = name; g_help = help; g_labels = labels;
                g_value = Atomic.make 0 } in
      (g, Gauge g))
    (function Gauge g -> Some g | _ -> None)

let histogram ?(help = "") ?(buckets = default_buckets) name ?(labels = []) () =
  let n = Array.length buckets in
  if n = 0 then invalid_arg "Metrics.histogram: no buckets";
  for i = 1 to n - 1 do
    if buckets.(i) <= buckets.(i - 1) then
      invalid_arg "Metrics.histogram: bounds not increasing"
  done;
  register name labels
    (fun labels ->
      let h =
        { h_name = name; h_help = help; h_labels = labels;
          h_bounds = Array.copy buckets;
          h_stripes =
            Array.init n_stripes (fun _ ->
                { s_lock = Mutex.create (); s_counts = Array.make (n + 1) 0;
                  s_sum = 0.0; s_count = 0 });
        }
      in
      (h, Histogram h))
    (function
      | Histogram h when Array.length h.h_bounds = n -> Some h
      | _ -> None)

(* ---------- hot-path operations ---------- *)

let inc ?(by = 1) c =
  if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add c.c_value by)

let counter_value c = Atomic.get c.c_value

let gauge_set g v = if Atomic.get enabled_flag then Atomic.set g.g_value v
let gauge_add g d =
  if Atomic.get enabled_flag then ignore (Atomic.fetch_and_add g.g_value d)
let gauge_value g = Atomic.get g.g_value

let bucket_index bounds v =
  (* Linear scan: 22 compares worst case, and latencies cluster in the low
     buckets, so this beats a branchy binary search in practice. *)
  let n = Array.length bounds in
  let rec go i = if i >= n then n else if v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  if Atomic.get enabled_flag then begin
    let s = h.h_stripes.(Thread.id (Thread.self ()) land (n_stripes - 1)) in
    let i = bucket_index h.h_bounds v in
    Mutex.lock s.s_lock;
    s.s_counts.(i) <- s.s_counts.(i) + 1;
    s.s_sum <- s.s_sum +. v;
    s.s_count <- s.s_count + 1;
    Mutex.unlock s.s_lock
  end

let time h f =
  if Atomic.get enabled_flag then begin
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () -> observe h (Unix.gettimeofday () -. t0))
      f
  end
  else f ()

(* ---------- snapshots ---------- *)

let histogram_snapshot h =
  let n = Array.length h.h_bounds in
  let counts = Array.make (n + 1) 0 in
  let sum = ref 0.0 and count = ref 0 in
  Array.iter
    (fun s ->
      Mutex.lock s.s_lock;
      Array.iteri (fun i c -> counts.(i) <- counts.(i) + c) s.s_counts;
      sum := !sum +. s.s_sum;
      count := !count + s.s_count;
      Mutex.unlock s.s_lock)
    h.h_stripes;
  (counts, !sum, !count)

let histogram_count h =
  let _, _, count = histogram_snapshot h in
  count

let histogram_sum h =
  let _, sum, _ = histogram_snapshot h in
  sum

let histogram_quantile h q =
  let counts, _, _ = histogram_snapshot h in
  Mope_stats.Summary.quantile_of_buckets ~bounds:h.h_bounds ~counts q

let reset_all () =
  Mutex.lock registry_lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_lock)
    (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Counter c -> Atomic.set c.c_value 0
          | Gauge g -> Atomic.set g.g_value 0
          | Histogram h ->
            Array.iter
              (fun s ->
                Mutex.lock s.s_lock;
                Array.fill s.s_counts 0 (Array.length s.s_counts) 0;
                s.s_sum <- 0.0;
                s.s_count <- 0;
                Mutex.unlock s.s_lock)
              h.h_stripes)
        registry)

(* ---------- exposition ---------- *)

let sorted_metrics () =
  Mutex.lock registry_lock;
  let all =
    Fun.protect
      ~finally:(fun () -> Mutex.unlock registry_lock)
      (fun () -> Hashtbl.fold (fun k m acc -> (k, m) :: acc) registry [])
  in
  List.sort (fun (a, _) (b, _) -> String.compare a b) all

let family_of = function
  | Counter c -> (c.c_name, c.c_help, "counter")
  | Gauge g -> (g.g_name, g.g_help, "gauge")
  | Histogram h -> (h.h_name, h.h_help, "histogram")

let prom_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v) labels)
    ^ "}"

let prom_labels_with_le labels le =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "%s=%S" k v)
         (labels @ [ ("le", le) ]))
  ^ "}"

let float_str v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let render_prometheus () =
  let buf = Buffer.create 4096 in
  let seen_family = Hashtbl.create 16 in
  List.iter
    (fun (_, m) ->
      let name, help, kind = family_of m in
      if not (Hashtbl.mem seen_family name) then begin
        Hashtbl.replace seen_family name ();
        if help <> "" then
          Buffer.add_string buf (Printf.sprintf "# HELP %s %s\n" name help);
        Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
      end;
      (match m with
       | Counter c ->
         Buffer.add_string buf
           (Printf.sprintf "%s%s %d\n" name (prom_labels c.c_labels)
              (Atomic.get c.c_value))
       | Gauge g ->
         Buffer.add_string buf
           (Printf.sprintf "%s%s %d\n" name (prom_labels g.g_labels)
              (Atomic.get g.g_value))
       | Histogram h ->
         let counts, sum, count = histogram_snapshot h in
         let cum = ref 0 in
         Array.iteri
           (fun i bound ->
             cum := !cum + counts.(i);
             Buffer.add_string buf
               (Printf.sprintf "%s_bucket%s %d\n" name
                  (prom_labels_with_le h.h_labels (float_str bound))
                  !cum))
           h.h_bounds;
         Buffer.add_string buf
           (Printf.sprintf "%s_bucket%s %d\n" name
              (prom_labels_with_le h.h_labels "+Inf")
              count);
         Buffer.add_string buf
           (Printf.sprintf "%s_sum%s %.9g\n" name (prom_labels h.h_labels) sum);
         Buffer.add_string buf
           (Printf.sprintf "%s_count%s %d\n" name (prom_labels h.h_labels)
              count)))
    (sorted_metrics ());
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
         labels)
  ^ "}"

let render_json () =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (fun (_, m) ->
      match m with
      | Counter c ->
        counters :=
          Printf.sprintf "{\"name\":\"%s\",\"labels\":%s,\"value\":%d}"
            (json_escape c.c_name) (json_labels c.c_labels)
            (Atomic.get c.c_value)
          :: !counters
      | Gauge g ->
        gauges :=
          Printf.sprintf "{\"name\":\"%s\",\"labels\":%s,\"value\":%d}"
            (json_escape g.g_name) (json_labels g.g_labels)
            (Atomic.get g.g_value)
          :: !gauges
      | Histogram h ->
        let counts, sum, count = histogram_snapshot h in
        let quantile q =
          Mope_stats.Summary.quantile_of_buckets ~bounds:h.h_bounds ~counts q
        in
        histograms :=
          Printf.sprintf
            "{\"name\":\"%s\",\"labels\":%s,\"count\":%d,\"sum\":%.9g,\"p50\":%.9g,\"p95\":%.9g,\"p99\":%.9g}"
            (json_escape h.h_name) (json_labels h.h_labels) count sum
            (quantile 0.5) (quantile 0.95) (quantile 0.99)
          :: !histograms)
    (sorted_metrics ());
  Printf.sprintf
    "{\"counters\":[%s],\"gauges\":[%s],\"histograms\":[%s]}"
    (String.concat "," (List.rev !counters))
    (String.concat "," (List.rev !gauges))
    (String.concat "," (List.rev !histograms))

(* ---------- cardinality-guard drop counter ---------- *)

let labels_dropped_total =
  counter
    ~help:"Labeled metric instances evicted by the per-family label-cardinality cap"
    "mope_metrics_labels_dropped_total" ()

let () =
  Atomic.set labels_dropped_total.c_value (Atomic.get dropped_before_init);
  dropped_counter := Some labels_dropped_total.c_value

let labels_dropped () = counter_value labels_dropped_total

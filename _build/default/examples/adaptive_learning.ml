(* Learning the client's query distribution online (paper §4).

     dune exec examples/adaptive_learning.exe

   The proxy starts with no idea what the client asks for; AdaptiveQueryU
   estimates the distribution from the queries seen so far and converges to
   the efficiency of the known-distribution scheduler while offering the
   same security at every step (each executed query is uniformly
   distributed regardless of the estimate's quality). *)

open Mope_core
open Mope_stats
open Mope_workload

let () =
  let dataset = Datasets.sanfran () in
  let m = dataset.Datasets.domain and k = 10 in
  let adaptive = Adaptive.create ~m ~k ~mode:Adaptive.Uniform in
  let rng = Rng.create 7L in
  let query_rng = Rng.create 8L in
  let queue = Queue.create () in
  let next_start () =
    if Queue.is_empty queue then
      List.iter
        (fun s -> Queue.add s queue)
        (Query_model.transform ~m ~k
           (Query_gen.sample_query query_rng
              ~data:dataset.Datasets.distribution ~sigma:10.0));
    Queue.pop queue
  in
  Printf.printf
    "AdaptiveQueryU over the SanFran workload (M=%d, k=%d)\n\
     round = 10 real queries served; watch alpha rise and fakes fall:\n\n"
    m k;
  Printf.printf "%8s %12s %12s %14s\n" "round" "alpha" "fakes" "buffer size";
  let fakes = ref 0 and reals = ref 0 and round = ref 0 in
  while !round < 40 do
    Adaptive.observe adaptive (next_start ());
    match Adaptive.step adaptive rng with
    | Some (Adaptive.Real _) ->
      incr reals;
      if !reals mod 10 = 0 then begin
        incr round;
        if !round <= 5 || !round mod 5 = 0 then
          Printf.printf "%8d %12.5f %12d %14d\n" !round (Adaptive.alpha adaptive)
            !fakes
            (Adaptive.buffer_size adaptive);
        fakes := 0
      end
    | Some (Adaptive.Fake _ | Adaptive.Replay _) -> incr fakes
    | None -> ()
  done;
  (* Compare with the scheduler that knows Q a priori. *)
  let q =
    Query_gen.start_distribution (Rng.create 11L)
      ~data:dataset.Datasets.distribution ~sigma:10.0 ~k ~samples:100_000
  in
  let known = Scheduler.create ~m ~k ~mode:Scheduler.Uniform ~q in
  Printf.printf
    "\nknown-Q scheduler: alpha = %.5f, %.0f fakes per 10 reals — the adaptive\n\
     proxy approaches this without ever being told the distribution.\n"
    (Scheduler.alpha known)
    (10.0 *. Scheduler.expected_fakes_per_real known)

(* The attack that motivates this whole line of work (paper §1, Fig. 1).

     dune exec examples/gap_attack_demo.exe

   An honest-but-curious server watches encrypted range queries. Naive MOPE
   leaves a permanent "gap" in the query-start ciphertexts right below the
   secret offset; finding the largest empty arc pins the offset and with it
   every record's plaintext neighbourhood. QueryU erases the gap. *)

open Mope_ope
open Mope_core
open Mope_stats
open Mope_attack

let bar width value top =
  let n = int_of_float (Float.round (value /. Float.max 1.0 top *. float_of_int width)) in
  String.make (Int.max 0 n) '#'

let () =
  let m = 100 and k = 10 and offset = 37 in
  let mope =
    Mope.create_with_offset ~key:"demo" ~domain:m ~range:(Ope.recommended_range m)
      ~offset ()
  in
  Printf.printf "Secret offset j = %d (the server must not learn this).\n\n" offset;

  (* The client runs 600 random valid range queries, naively. *)
  let rng = Rng.create 3L in
  let queries =
    List.init 600 (fun _ ->
        let lo = Rng.int rng (m - k + 1) in
        Query_model.make ~m ~lo ~hi:(lo + k - 1))
  in
  let stream = Make_queries.strip (Make_queries.run_naive ~mope ~k ~queries) in

  (* What the server tallies: query starts, decrypted here only for the
     visualization (grouped into 20 buckets of 5 shifted plaintexts). *)
  let buckets = Array.make 20 0.0 in
  List.iter
    (fun q -> begin
       let shifted = Modular.add ~m (Mope.decrypt mope q.Make_queries.c_lo) offset in
       buckets.(shifted / 5) <- buckets.(shifted / 5) +. 1.0
     end)
    stream;
  let top = Array.fold_left Float.max 0.0 buckets in
  Printf.printf "histogram of observed (shifted) query starts, naive execution:\n";
  Array.iteri
    (fun i v -> Printf.printf "  %2d-%2d | %s\n" (5 * i) ((5 * i) + 4) (bar 40 v top))
    buckets;

  let guess, success = Gap_attack.run ~mope ~stream in
  Printf.printf
    "\nadversary: largest empty arc has %d ciphertext cells; betting the next\n\
     observed start encrypts plaintext 0... %s\n"
    guess.Gap_attack.arc_len
    (if success then "CORRECT — offset recovered." else "wrong this time.");

  (* Now the same client behind QueryU. *)
  let q_dist =
    let pmf = Array.init m (fun i -> if i <= m - k then 1.0 else 0.0) in
    let total = Array.fold_left ( +. ) 0.0 pmf in
    Histogram.of_pmf (Array.map (fun p -> p /. total) pmf)
  in
  let scheduler = Scheduler.create ~m ~k ~mode:Scheduler.Uniform ~q:q_dist in
  let protected_stream =
    Make_queries.strip (Make_queries.run ~mope ~scheduler ~rng ~queries)
  in
  let buckets = Array.make 20 0.0 in
  List.iter
    (fun q -> begin
       let shifted = Modular.add ~m (Mope.decrypt mope q.Make_queries.c_lo) offset in
       buckets.(shifted / 5) <- buckets.(shifted / 5) +. 1.0
     end)
    protected_stream;
  let top = Array.fold_left Float.max 0.0 buckets in
  Printf.printf "\nsame client behind QueryU (%.2f fakes per real query):\n"
    (Scheduler.expected_fakes_per_real scheduler);
  Array.iteri
    (fun i v -> Printf.printf "  %2d-%2d | %s\n" (5 * i) ((5 * i) + 4) (bar 40 v top))
    buckets;
  let _, success = Gap_attack.run ~mope ~stream:protected_stream in
  Printf.printf "\nadversary on the protected stream: %s\n"
    (if success then "still correct (got lucky — 1/M chance)."
     else "wrong — the gap is gone.");

  (* Aggregate over many keys. *)
  let naive_rate =
    Gap_attack.success_rate ~m ~k ~n_queries:600 ~trials:40 ~seed:10L ~fake_mix:None
  in
  let protected_rate =
    Gap_attack.success_rate ~m ~k ~n_queries:600 ~trials:40 ~seed:10L
      ~fake_mix:(Some scheduler)
  in
  Printf.printf "\nover 40 fresh keys: naive %.0f%%, with QueryU %.0f%%\n"
    (100.0 *. naive_rate) (100.0 *. protected_rate)

(* The paper's headline scenario: an analytics database outsourced to an
   untrusted server, queried through the trusted proxy.

     dune exec examples/tpch_scenario.exe

   Builds a TPC-H subset, encrypts it (MOPE dates + DET join keys), and runs
   Q6, Q14 and Q4 both directly and through the proxy, verifying the results
   agree and showing what the server actually saw. *)

open Mope_db
open Mope_workload
open Mope_system

let show result =
  match result.Exec.rows with
  | [] -> "(empty)"
  | rows ->
    String.concat "\n    "
      (List.map
         (fun row ->
           String.concat " | " (Array.to_list (Array.map Value.to_string row)))
         rows)

let () =
  Printf.printf "Building TPC-H (SF 0.002) and its encrypted twin...\n%!";
  let tb = Testbed.load ~sf:0.002 ~seed:5L () in
  let sizes = Testbed.sizes tb in
  Printf.printf "  %d orders, %d lineitems, %d parts\n" sizes.Tpch.orders
    sizes.Tpch.lineitems sizes.Tpch.parts;
  let enc = Testbed.encrypted_for tb ~rho:(Some 92) in
  let lineitem = Database.table_exn (Encrypted_db.server enc) "lineitem" in
  (* Show what the server holds: ciphertext dates and keys. *)
  let sample = Table.get lineitem 0 in
  Printf.printf "server's first lineitem row (encrypted):\n    %s\n"
    (String.concat " | " (Array.to_list (Array.map Value.to_string sample)));
  let plain_row = Encrypted_db.decrypt_row enc ~table:"lineitem" sample in
  Printf.printf "what the proxy can decrypt it back to:\n    %s\n\n"
    (String.concat " | " (Array.to_list (Array.map Value.to_string plain_row)));

  let rng = Mope_stats.Rng.create 9L in
  List.iter
    (fun template ->
      let proxy = Testbed.proxy tb ~template ~rho:(Some 92) ~batch_size:20 () in
      let inst = Tpch_queries.random_instance rng template in
      Printf.printf "%s: %s\n" (Tpch_queries.template_name template)
        inst.Tpch_queries.sql;
      let plain = Testbed.run_plain tb inst in
      let encrypted = Testbed.run_encrypted proxy inst in
      Printf.printf "  plaintext:  %s\n" (show plain);
      Printf.printf "  via proxy:  %s\n" (show encrypted);
      let agree =
        List.map (Array.map Value.to_string) plain.Exec.rows
        = List.map (Array.map Value.to_string) encrypted.Exec.rows
      in
      let c = Proxy.counters proxy in
      Printf.printf
        "  results agree: %b — server saw %d requests (%d fakes), %d rows fetched, %d kept\n\n"
        agree c.Proxy.server_requests c.Proxy.fake_queries c.Proxy.rows_fetched
        c.Proxy.rows_delivered)
    [ Tpch_queries.Q6; Tpch_queries.Q14; Tpch_queries.Q4 ]

(* Quickstart: encrypt a column with MOPE, run range queries through the
   scheduler, and see why the fake queries matter.

     dune exec examples/quickstart.exe *)

open Mope_ope
open Mope_core
open Mope_stats

let () =
  (* 1. A MOPE scheme over a domain of 365 days. *)
  let domain = 365 in
  let mope =
    Mope.create ~key:"quickstart-secret" ~domain
      ~range:(Ope.recommended_range domain) ()
  in
  Printf.printf "MOPE over [0, %d) -> [0, %d)\n" domain (Mope.range mope);

  (* 2. Encryption preserves modular order, so an untrusted server can index
     and range-scan the ciphertexts. *)
  let days = [ 10; 50; 51; 200; 364 ] in
  List.iter (fun d -> Printf.printf "  Enc(%3d) = %6d\n" d (Mope.encrypt mope d)) days;
  Printf.printf "round-trips: %b\n"
    (List.for_all (fun d -> Mope.decrypt mope (Mope.encrypt mope d) = d) days);

  (* 3. A range query becomes one or two ciphertext scan segments (two when
     the secret offset wraps it around the space). *)
  let segments = Mope.ciphertext_segments mope ~lo:300 ~hi:40 in
  Printf.printf "query [300, 40] (wrapping) -> segments: %s\n"
    (String.concat ", "
       (List.map (fun (a, b) -> Printf.sprintf "[%d..%d]" a b) segments));

  (* 4. Executing queries naively leaks the offset; the QueryU scheduler
     mixes in fake queries so the server-perceived start distribution is
     uniform. The client's distribution here is Zipf-skewed. *)
  let k = 7 in
  let q = Distributions.zipf ~size:domain ~s:1.1 in
  let scheduler = Scheduler.create ~m:domain ~k ~mode:Scheduler.Uniform ~q in
  Printf.printf
    "QueryU: coin bias alpha = %.3f, expected %.1f fake queries per real one\n"
    (Scheduler.alpha scheduler)
    (Scheduler.expected_fakes_per_real scheduler);
  let rng = Rng.create 42L in
  let burst = Scheduler.schedule scheduler rng ~real:120 in
  Printf.printf "one burst for real start 120 (real is last): %s\n"
    (String.concat " " (List.map string_of_int burst));

  (* 5. QueryP trades a little leakage (the offset's low bits) for far fewer
     fakes on skewed workloads. *)
  let periodic = Scheduler.create ~m:365 ~k ~mode:(Scheduler.Periodic 73) ~q in
  Printf.printf "QueryP[73]: expected %.1f fakes per real (leaks log2(73)=%.1f bits)\n"
    (Scheduler.expected_fakes_per_real periodic)
    (log 73.0 /. log 2.0)

examples/outsourcing_lifecycle.mli:

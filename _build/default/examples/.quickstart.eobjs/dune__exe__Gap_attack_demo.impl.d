examples/gap_attack_demo.ml: Array Float Gap_attack Histogram Int List Make_queries Modular Mope Mope_attack Mope_core Mope_ope Mope_stats Ope Printf Query_model Rng Scheduler String

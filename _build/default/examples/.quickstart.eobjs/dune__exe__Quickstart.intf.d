examples/quickstart.mli:

examples/quickstart.ml: Distributions List Mope Mope_core Mope_ope Mope_stats Ope Printf Rng Scheduler String

examples/adaptive_learning.ml: Adaptive Datasets List Mope_core Mope_stats Mope_workload Printf Query_gen Query_model Queue Rng Scheduler

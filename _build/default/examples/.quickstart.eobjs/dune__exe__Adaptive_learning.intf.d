examples/adaptive_learning.mli:

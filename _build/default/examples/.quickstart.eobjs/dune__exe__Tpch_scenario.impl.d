examples/tpch_scenario.ml: Array Database Encrypted_db Exec List Mope_db Mope_stats Mope_system Mope_workload Printf Proxy String Table Testbed Tpch Tpch_queries Value

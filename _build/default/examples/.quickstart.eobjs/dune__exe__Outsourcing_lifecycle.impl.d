examples/outsourcing_lifecycle.ml: Array Buffer Database Date Encrypted_db Exec Filename Key_rotation List Mope_core Mope_db Mope_stats Mope_system Printf Proxy Storage String Sys Table Value

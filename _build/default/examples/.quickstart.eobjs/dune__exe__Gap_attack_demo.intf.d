examples/gap_attack_demo.mli:

examples/tpch_scenario.mli:

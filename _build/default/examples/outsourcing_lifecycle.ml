(* The full life of an outsourced database: build it with SQL, persist it,
   encrypt it, query it through the proxy, and rotate the keys — the
   re-encryption mitigation the paper sketches in §9.

     dune exec examples/outsourcing_lifecycle.exe *)

open Mope_db
open Mope_system

let show r =
  String.concat "\n    "
    (List.map
       (fun row -> String.concat " | " (Array.to_list (Array.map Value.to_string row)))
       r.Exec.rows)

let () =
  (* 1. The data owner builds a database with plain SQL. *)
  let db = Database.create () in
  let run sql =
    match Database.execute db sql with
    | Database.Affected n -> Printf.printf "  [%3d rows] %s\n" n sql
    | Database.Rows _ -> ()
  in
  run "CREATE TABLE visits (id INTEGER, day DATE, patient TEXT, cost FLOAT)";
  run "CREATE INDEX ON visits (day)";
  let rng = Mope_stats.Rng.create 5L in
  let base = Date.of_ymd 1997 1 1 in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "INSERT INTO visits VALUES ";
  for i = 1 to 500 do
    if i > 1 then Buffer.add_string buf ", ";
    Buffer.add_string buf
      (Printf.sprintf "(%d, DATE '%s', 'patient-%d', %.2f)" i
         (Date.to_string (base + Mope_stats.Rng.int rng 365))
         (1 + Mope_stats.Rng.int rng 40)
         (25.0 +. (Mope_stats.Rng.float rng *. 400.0)))
  done;
  run (Buffer.contents buf);
  run "DELETE FROM visits WHERE cost > 400.0";
  run "UPDATE visits SET cost = cost * 1.1 WHERE day < DATE '1997-02-01'";

  (* 2. Persist and reload — what survives a restart. *)
  let path = Filename.temp_file "visits" ".mopedb" in
  Storage.save db ~path;
  let db = Storage.load ~path in
  Sys.remove path;
  Printf.printf "\nreloaded from disk: %d visits\n"
    (Table.length (Database.table_exn db "visits"));

  (* 3. Encrypt for outsourcing: MOPE on the date, everything the paper's
     measurements need. *)
  let specs =
    [ { Encrypted_db.table = "visits";
        encrypted_columns =
          [ ("day", Encrypted_db.Mope_date);
            (* ids are range-queryable too: their own MOPE scheme, own
               secret offset. *)
            ("id", Encrypted_db.Mope_int { lo = 1; hi = 500 }) ];
        index_columns = [ "day"; "id" ] } ]
  in
  let enc =
    Encrypted_db.create ~key:"owner-key-v1" ~window_lo:base ~date_domain:365
      ~plain:db ~specs ()
  in
  Printf.printf "encrypted twin built; server sees e.g. day -> %d\n"
    (Encrypted_db.encrypt_date enc (Date.of_ymd 1997 6 1));
  let id_segments = Encrypted_db.int_segments enc ~table:"visits" ~column:"id" ~lo:100 ~hi:150 in
  Printf.printf "id range [100, 150] becomes ciphertext segment(s) %s\n"
    (String.concat ", "
       (List.map (fun (a, b) -> Printf.sprintf "[%d..%d]" a b) id_segments));

  (* 4. Query through the proxy with QueryP[73]. *)
  let scheduler =
    Mope_core.Scheduler.create ~m:365 ~k:31
      ~mode:(Mope_core.Scheduler.Periodic 73)
      ~q:(Mope_stats.Histogram.uniform 365)
  in
  let proxy = Proxy.create ~enc ~scheduler ~batch_size:10 ~seed:2L () in
  let sql =
    "SELECT count(*), sum(cost) FROM visits WHERE day >= DATE '1997-03-01' AND \
     day <= DATE '1997-03-31'"
  in
  let result =
    Proxy.execute proxy ~sql ~date_column:"day" ~date_lo:(Date.of_ymd 1997 3 1)
      ~date_hi:(Date.of_ymd 1997 3 31)
  in
  Printf.printf "\nMarch query via proxy:\n    %s\n" (show result);
  Printf.printf "plaintext check:\n    %s\n" (show (Database.query db sql));

  (* 5. A plaintext-ciphertext pair leaked? Rotate the keys (§9). *)
  let rotated, report = Key_rotation.rotate ~enc ~new_key:"owner-key-v2" in
  Printf.printf
    "\nrotated %d rows across %d tables; secret offset %d -> %d; old pair now useless: %b\n"
    report.Key_rotation.rows report.Key_rotation.tables
    report.Key_rotation.old_offset report.Key_rotation.new_offset
    (Encrypted_db.encrypt_date enc (Date.of_ymd 1997 6 1)
    <> Encrypted_db.encrypt_date rotated (Date.of_ymd 1997 6 1));
  let proxy' =
    Proxy.create ~enc:rotated ~scheduler ~batch_size:10 ~seed:3L ()
  in
  let result' =
    Proxy.execute proxy' ~sql ~date_column:"day" ~date_lo:(Date.of_ymd 1997 3 1)
      ~date_hi:(Date.of_ymd 1997 3 31)
  in
  Printf.printf "same query on the rotated database:\n    %s\n" (show result')

let zipf_pmf ~size ~s =
  if size <= 0 then invalid_arg "Distributions.zipf_pmf";
  let raw = Array.init size (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 raw in
  Array.map (fun w -> w /. total) raw

let zipf ~size ~s = Histogram.of_pmf (zipf_pmf ~size ~s)

let normal_quantile ~mean ~sigma u =
  mean +. (sigma *. Special.inverse_normal_cdf u)

let sample_normal rng ~mean ~sigma =
  (* Clamp away from the poles where the quantile approximation diverges. *)
  let u = Float.max 1e-12 (Float.min (1.0 -. 1e-12) (Rng.float rng)) in
  normal_quantile ~mean ~sigma u

let bernoulli ~u ~p = u < p

let geometric ~u ~p =
  if p >= 1.0 then 0
  else if p <= 0.0 then invalid_arg "Distributions.geometric: p must be positive"
  else begin
    (* Inversion: smallest k with 1 − (1−p)^(k+1) > u. *)
    let k = Float.to_int (Float.floor (log1p (-.u) /. log1p (-.p))) in
    Int.max 0 k
  end

let sample_bernoulli rng ~p = bernoulli ~u:(Rng.float rng) ~p

let sample_geometric rng ~p = geometric ~u:(Rng.float rng) ~p

(** Descriptive statistics used by the experiment harness and tests. *)

val mean : float array -> float
(** Arithmetic mean; 0 on empty input. *)

val variance : float array -> float
(** Population variance; 0 when fewer than two samples. *)

val stddev : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] for [p ∈ [0,100]], linear interpolation on a sorted
    copy. Raises on empty input. *)

val median : float array -> float

val chi_square_uniform : int array -> float
(** χ² statistic of observed counts against the uniform expectation —
    used to test flatness of the perceived query distribution (Fig. 2). *)

val chi_square : observed:int array -> expected:float array -> float
(** χ² against an arbitrary expected-count vector (Fig. 3 periodicity). *)

val ks_statistic : observed:int array -> expected:float array -> float
(** Kolmogorov–Smirnov statistic: the max absolute gap between the empirical
    CDF of [observed] counts and the CDF of the [expected] pmf (which is
    normalized internally). A sharper flatness test than χ² for the
    perceived-distribution experiments. *)

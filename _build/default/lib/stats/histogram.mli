(** Discrete probability distributions over a finite domain [\[0, size)].

    This is the representation the paper uses for the client query
    distribution (a histogram over query start positions, §3.1), for the
    completion distributions, and for the perceived server-side mix. Sampling
    is by inversion over the precomputed CDF ([13] in the paper). *)

type t

val size : t -> int
(** Domain size [M]. *)

val of_counts : int array -> t
(** Normalize raw counts into a distribution. At least one count must be
    positive; negatives are rejected. *)

val of_pmf : float array -> t
(** Build from an explicit pmf. Entries must be non-negative and sum to
    within [1e-9] of 1 (they are re-normalized exactly). *)

val uniform : int -> t
(** The uniform distribution on [\[0, size)]. *)

val point : size:int -> int -> t
(** Unit mass at one element. *)

val prob : t -> int -> float
(** [prob t i] is the probability of element [i]. *)

val pmf : t -> float array
(** Copy of the pmf. *)

val max_prob : t -> float
(** [μ_D = max_i D(i)] (paper §3.1). *)

val argmax : t -> int
(** Smallest index attaining {!max_prob}. *)

val periodic_eta : t -> rho:int -> float array * float
(** [periodic_eta t ~rho] returns [(η, η̄)] where [η.(j) = max_{i ≡ j (ρ)} D(i)]
    and [η̄] is their mean (paper §3.2). [rho] must divide [size t]. *)

val sample : t -> u:float -> int
(** Inversion sampling: map a uniform [u ∈ [0,1)] to an element by binary
    search over the CDF. Deterministic in [u]. *)

val mix : float -> t -> t -> t
(** [mix a d d'] is the convex combination [a·d + (1−a)·d']; [0 ≤ a ≤ 1]. *)

val total_variation : t -> t -> float
(** Total-variation distance [½ Σ |p − q|], used by tests and experiments to
    check the perceived distribution against uniform / periodic targets. *)

val is_periodic : t -> rho:int -> eps:float -> bool
(** Whether [D(x) = D(x + ρ mod size)] for all [x], up to [eps]. *)

val shift : t -> int -> t
(** [shift t j] moves mass from [i] to [(i + j) mod size] — the distribution
    of [x + j mod M] when [x ~ t]. *)

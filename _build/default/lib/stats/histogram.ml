type t = {
  pmf : float array;
  cdf : float array;   (* cdf.(i) = sum of pmf.(0..i) ; cdf.(size-1) = 1. *)
}

let size t = Array.length t.pmf

let build pmf =
  let n = Array.length pmf in
  if n = 0 then invalid_arg "Histogram: empty domain";
  let total = Array.fold_left ( +. ) 0.0 pmf in
  if total <= 0.0 then invalid_arg "Histogram: zero total mass";
  let pmf = Array.map (fun p -> p /. total) pmf in
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. pmf.(i);
    cdf.(i) <- !acc
  done;
  cdf.(n - 1) <- 1.0;
  { pmf; cdf }

let of_counts counts =
  Array.iter (fun c -> if c < 0 then invalid_arg "Histogram.of_counts: negative") counts;
  build (Array.map float_of_int counts)

let of_pmf pmf =
  Array.iter (fun p -> if p < 0.0 || Float.is_nan p then invalid_arg "Histogram.of_pmf") pmf;
  let total = Array.fold_left ( +. ) 0.0 pmf in
  if Float.abs (total -. 1.0) > 1e-9 then invalid_arg "Histogram.of_pmf: mass not 1";
  build pmf

let uniform n =
  if n <= 0 then invalid_arg "Histogram.uniform";
  build (Array.make n 1.0)

let point ~size i =
  if i < 0 || i >= size then invalid_arg "Histogram.point";
  let pmf = Array.make size 0.0 in
  pmf.(i) <- 1.0;
  build pmf

let prob t i = t.pmf.(i)

let pmf t = Array.copy t.pmf

let max_prob t = Array.fold_left Float.max 0.0 t.pmf

let argmax t =
  let best = ref 0 in
  Array.iteri (fun i p -> if p > t.pmf.(!best) then best := i) t.pmf;
  !best

let periodic_eta t ~rho =
  let m = size t in
  if rho <= 0 || m mod rho <> 0 then invalid_arg "Histogram.periodic_eta: rho must divide size";
  let eta = Array.make rho 0.0 in
  Array.iteri (fun i p -> if p > eta.(i mod rho) then eta.(i mod rho) <- p) t.pmf;
  let mean = Array.fold_left ( +. ) 0.0 eta /. float_of_int rho in
  (eta, mean)

let sample t ~u =
  if u < 0.0 || u >= 1.0 then invalid_arg "Histogram.sample: u out of [0,1)";
  (* Smallest i with cdf.(i) > u. *)
  let lo = ref 0 and hi = ref (size t - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo

let mix a d d' =
  if a < 0.0 || a > 1.0 then invalid_arg "Histogram.mix";
  if size d <> size d' then invalid_arg "Histogram.mix: size mismatch";
  build (Array.init (size d) (fun i -> (a *. d.pmf.(i)) +. ((1.0 -. a) *. d'.pmf.(i))))

let total_variation d d' =
  if size d <> size d' then invalid_arg "Histogram.total_variation: size mismatch";
  let acc = ref 0.0 in
  Array.iteri (fun i p -> acc := !acc +. Float.abs (p -. d'.pmf.(i))) d.pmf;
  0.5 *. !acc

let is_periodic t ~rho ~eps =
  let m = size t in
  if rho <= 0 || m mod rho <> 0 then invalid_arg "Histogram.is_periodic";
  let ok = ref true in
  for i = 0 to m - 1 do
    if Float.abs (t.pmf.(i) -. t.pmf.((i + rho) mod m)) > eps then ok := false
  done;
  !ok

let shift t j =
  let m = size t in
  let j = ((j mod m) + m) mod m in
  build (Array.init m (fun i -> t.pmf.(((i - j) mod m + m) mod m)))

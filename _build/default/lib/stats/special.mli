(** Special functions needed by the samplers: log-gamma, log-binomial,
    error function, and the inverse normal CDF. All implemented in-tree
    (no external numeric dependencies are available). *)

val ln_gamma : float -> float
(** Natural log of the Gamma function for [x > 0] (Lanczos approximation,
    |relative error| < 1e-13 over the range used here). *)

val ln_factorial : int -> float
(** [ln n!], exact-table below 64, Lanczos above. *)

val ln_choose : int -> int -> float
(** [ln (n choose k)]; [neg_infinity] outside [0 ≤ k ≤ n]. *)

val erf : float -> float
(** Error function (Abramowitz–Stegun 7.1.26 with refinement; |err| < 1.5e-7). *)

val normal_cdf : mean:float -> sigma:float -> float -> float
(** CDF of N(mean, sigma²). *)

val inverse_normal_cdf : float -> float
(** Quantile function of the standard normal for [p ∈ (0,1)]
    (Acklam's rational approximation, |relative err| < 1.2e-9). *)

type t = { mutable state : int64 }

let create seed = { state = seed }

let copy t = { state = t.state }

let golden = 0x9E3779B97F4A7C15L

let int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create (int64 t)

let int t n =
  if n <= 0 then invalid_arg "Rng.int";
  (* 63-bit rejection sampling to avoid modulo bias. *)
  let n64 = Int64.of_int n in
  let limit = Int64.sub Int64.max_int (Int64.rem Int64.max_int n64) in
  let rec draw () =
    let x = Int64.logand (int64 t) Int64.max_int in
    if Int64.compare x limit < 0 then Int64.to_int (Int64.rem x n64) else draw ()
  in
  draw ()

let float t =
  let bits53 = Int64.shift_right_logical (int64 t) 11 in
  Int64.to_float bits53 /. 9007199254740992.0

let bool t = Int64.logand (int64 t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let validate ~population ~successes ~draws =
  if population < 0 || successes < 0 || draws < 0
     || successes > population || draws > population then
    invalid_arg "Hypergeometric: invalid parameters"

let support ~population ~successes ~draws =
  validate ~population ~successes ~draws;
  (Int.max 0 (draws - (population - successes)), Int.min draws successes)

let log_pmf ~population ~successes ~draws k =
  let lo, hi = support ~population ~successes ~draws in
  if k < lo || k > hi then neg_infinity
  else
    Special.ln_choose successes k
    +. Special.ln_choose (population - successes) (draws - k)
    -. Special.ln_choose population draws

let mean ~population ~successes ~draws =
  validate ~population ~successes ~draws;
  if population = 0 then 0.0
  else float_of_int draws *. float_of_int successes /. float_of_int population

let mode ~population ~successes ~draws =
  let lo, hi = support ~population ~successes ~draws in
  let raw =
    (draws + 1) * (successes + 1) / (population + 2)
  in
  Int.max lo (Int.min hi raw)

(* p(k+1)/p(k) for the hypergeometric pmf. *)
let ratio_up ~population ~successes ~draws k =
  float_of_int ((successes - k) * (draws - k))
  /. float_of_int ((k + 1) * (population - successes - draws + k + 1))

let sample ~population ~successes ~draws ~u =
  if u < 0.0 || u >= 1.0 then invalid_arg "Hypergeometric.sample: u";
  let lo, hi = support ~population ~successes ~draws in
  if lo = hi then lo
  else begin
    let m = mode ~population ~successes ~draws in
    let p_mode = exp (log_pmf ~population ~successes ~draws m) in
    (* Centre-out enumeration: mode, mode+1, mode−1, mode+2, …  Each value is
       assigned exactly its pmf mass, so the induced distribution is exact. *)
    let acc = ref p_mode in
    if u < !acc then m
    else begin
      let k_up = ref m and p_up = ref p_mode in      (* last emitted above *)
      let k_down = ref m and p_down = ref p_mode in  (* last emitted below *)
      let result = ref None in
      while !result = None do
        let can_up = !k_up < hi and can_down = !k_down > lo in
        if not can_up && not can_down then
          (* Floating-point undershoot after exhausting the support: return
             the boundary with the larger remaining tail mass. *)
          result := Some (if !p_up >= !p_down then !k_up else !k_down)
        else begin
          if can_up then begin
            p_up := !p_up *. ratio_up ~population ~successes ~draws !k_up;
            incr k_up;
            acc := !acc +. !p_up;
            if u < !acc && !result = None then result := Some !k_up
          end;
          if can_down && !result = None then begin
            p_down :=
              !p_down /. ratio_up ~population ~successes ~draws (!k_down - 1);
            decr k_down;
            acc := !acc +. !p_down;
            if u < !acc then result := Some !k_down
          end
        end
      done;
      match !result with Some k -> k | None -> assert false
    end
  end

let sample_binomial_approx ~population ~successes ~draws ~u =
  if u < 0.0 || u >= 1.0 then invalid_arg "Hypergeometric.sample_binomial_approx: u";
  let lo, hi = support ~population ~successes ~draws in
  if lo = hi || population = 0 then lo
  else begin
    let p = float_of_int successes /. float_of_int population in
    (* Plain left-to-right inversion of Binom(draws, p), then clamp. *)
    let log_p = log p and log_q = log (1.0 -. p) in
    let log_pmf k =
      Special.ln_choose draws k
      +. (float_of_int k *. log_p)
      +. (float_of_int (draws - k) *. log_q)
    in
    let rec walk k acc =
      if k > draws then draws
      else begin
        let acc = acc +. exp (log_pmf k) in
        if u < acc then k else walk (k + 1) acc
      end
    in
    Int.max lo (Int.min hi (walk 0 0.0))
  end

lib/stats/hypergeometric.ml: Int Special

lib/stats/histogram.mli:

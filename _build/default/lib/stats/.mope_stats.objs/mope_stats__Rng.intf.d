lib/stats/rng.mli:

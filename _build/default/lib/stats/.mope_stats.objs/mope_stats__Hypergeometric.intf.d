lib/stats/hypergeometric.mli:

lib/stats/summary.mli:

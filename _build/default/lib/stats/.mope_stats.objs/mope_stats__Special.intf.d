lib/stats/special.mli:

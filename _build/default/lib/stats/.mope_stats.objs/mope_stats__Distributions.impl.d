lib/stats/distributions.ml: Array Float Histogram Int Rng Special

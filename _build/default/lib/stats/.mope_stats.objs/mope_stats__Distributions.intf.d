lib/stats/distributions.mli: Histogram Rng

(* Lanczos approximation with g = 7, n = 9 coefficients. *)
let lanczos =
  [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
     771.32342877765313; -176.61502916214059; 12.507343278686905;
     -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]

let rec ln_gamma x =
  if x <= 0.0 then invalid_arg "Special.ln_gamma: requires x > 0";
  if x < 0.5 then
    (* Reflection: Γ(x)Γ(1−x) = π / sin(πx). *)
    log (Float.pi /. sin (Float.pi *. x)) -. ln_gamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let a = ref lanczos.(0) in
    let t = x +. 7.5 in
    for i = 1 to 8 do
      a := !a +. (lanczos.(i) /. (x +. float_of_int i))
    done;
    (0.5 *. log (2.0 *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !a
  end

let factorial_table =
  let table = Array.make 64 0.0 in
  let acc = ref 0.0 in
  for n = 1 to 63 do
    acc := !acc +. log (float_of_int n);
    table.(n) <- !acc
  done;
  table

let ln_factorial n =
  if n < 0 then invalid_arg "Special.ln_factorial";
  if n < 64 then factorial_table.(n) else ln_gamma (float_of_int n +. 1.0)

let ln_choose n k =
  if k < 0 || k > n then neg_infinity
  else ln_factorial n -. ln_factorial k -. ln_factorial (n - k)

let erf x =
  (* Abramowitz & Stegun 7.1.26. *)
  let sign = if x < 0.0 then -1.0 else 1.0 in
  let x = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
  let y =
    1.0
    -. (((((1.061405429 *. t -. 1.453152027) *. t) +. 1.421413741) *. t
         -. 0.284496736) *. t +. 0.254829592)
       *. t *. exp (-.x *. x)
  in
  sign *. y

let normal_cdf ~mean ~sigma x =
  0.5 *. (1.0 +. erf ((x -. mean) /. (sigma *. sqrt 2.0)))

(* Acklam's inverse normal CDF approximation. *)
let inverse_normal_cdf p =
  if p <= 0.0 || p >= 1.0 then invalid_arg "Special.inverse_normal_cdf";
  let a = [| -3.969683028665376e+01; 2.209460984245205e+02;
             -2.759285104469687e+02; 1.383577518672690e+02;
             -3.066479806614716e+01; 2.506628277459239e+00 |] in
  let b = [| -5.447609879822406e+01; 1.615858368580409e+02;
             -1.556989798598866e+02; 6.680131188771972e+01;
             -1.328068155288572e+01 |] in
  let c = [| -7.784894002430293e-03; -3.223964580411365e-01;
             -2.400758277161838e+00; -2.549732539343734e+00;
             4.374664141464968e+00; 2.938163982698783e+00 |] in
  let d = [| 7.784695709041462e-03; 3.224671290700398e-01;
             2.445134137142996e+00; 3.754408661907416e+00 |] in
  let p_low = 0.02425 in
  if p < p_low then begin
    let q = sqrt (-2.0 *. log p) in
    (((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
    /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
  end
  else if p <= 1.0 -. p_low then begin
    let q = p -. 0.5 in
    let r = q *. q in
    (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4)) *. r +. a.(5)) *. q
    /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4)) *. r +. 1.0)
  end
  else begin
    let q = sqrt (-2.0 *. log (1.0 -. p)) in
    -.((((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4)) *. q +. c.(5))
       /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0))
  end

(** Splitmix64: a fast, seedable, non-cryptographic generator.

    Used for workload synthesis (datasets, query streams, TPC-H rows) where
    reproducibility across runs matters but cryptographic strength does not.
    Everything security-relevant draws from {!Mope_crypto.Drbg} instead. *)

type t

val create : int64 -> t
(** Seeded generator; equal seeds give equal streams. *)

val copy : t -> t
(** Independent copy at the current state. *)

val split : t -> t
(** Derive a statistically independent child generator (advances [t]). *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t n] is uniform in [\[0, n)]; [n > 0]. *)

val float : t -> float
(** Uniform in [\[0, 1)]. *)

val bool : t -> bool

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

(** Parametric distributions used by the paper's workloads and algorithms. *)

val zipf_pmf : size:int -> s:float -> float array
(** Zipf pmf on [\[0, size)] with exponent [s]: [p(i) ∝ 1/(i+1)^s]. *)

val zipf : size:int -> s:float -> Histogram.t
(** {!zipf_pmf} as a {!Histogram.t}. *)

val normal_quantile : mean:float -> sigma:float -> float -> float
(** [normal_quantile ~mean ~sigma u] maps a uniform [u ∈ (0,1)] to an
    N(mean, sigma²) draw by inversion (deterministic in [u]). *)

val sample_normal : Rng.t -> mean:float -> sigma:float -> float
(** Draw from N(mean, sigma²) using {!Rng}. *)

val bernoulli : u:float -> p:float -> bool
(** [bernoulli ~u ~p] is [u < p] — heads with probability [p] for uniform
    [u]. This is the paper's [Bern(α)] coin. *)

val geometric : u:float -> p:float -> int
(** Number of failures before the first success of a [Bern(p)] coin, by
    inversion: the count of fake queries to issue before the real one
    (paper §5). Returns 0 when [p ≥ 1]. *)

val sample_bernoulli : Rng.t -> p:float -> bool

val sample_geometric : Rng.t -> p:float -> int

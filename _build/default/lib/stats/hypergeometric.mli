(** Exact hypergeometric sampling.

    The BCLO order-preserving encryption scheme walks a binary search tree
    over the ciphertext range; at each node it must sample how many of the
    [successes] plaintext points fall into the lower half of the range — a
    hypergeometric draw with deterministic coins. We sample {e exactly} by
    inversion: the pmf is enumerated centre-out from the mode with
    multiplicative recurrences (the pmf at the mode comes from log-binomials),
    so the expected work is O(std. deviation) rather than O(support).

    Parameters follow the urn convention: [population] balls of which
    [successes] are marked; [draws] balls are drawn without replacement; the
    sample is how many drawn balls are marked. *)

val support : population:int -> successes:int -> draws:int -> int * int
(** Inclusive [(lo, hi)] support bounds:
    [lo = max 0 (draws − (population − successes))], [hi = min draws successes]. *)

val log_pmf : population:int -> successes:int -> draws:int -> int -> float
(** Natural log of the pmf at a point ([neg_infinity] outside the support). *)

val mean : population:int -> successes:int -> draws:int -> float
(** [draws · successes / population]. *)

val mode : population:int -> successes:int -> draws:int -> int
(** The (clamped) mode [⌊(draws+1)(successes+1)/(population+2)⌋]. *)

val sample : population:int -> successes:int -> draws:int -> u:float -> int
(** [sample ~population ~successes ~draws ~u] maps one uniform [u ∈ [0,1)] to
    an exact hypergeometric variate. Deterministic in [u]: identical coins
    give identical samples, which is what makes lazily-sampled OPE
    self-consistent across encryptions. *)

val sample_binomial_approx :
  population:int -> successes:int -> draws:int -> u:float -> int
(** The binomial approximation [Binom(draws, successes/population)] clamped to
    the hypergeometric support — kept only as an ablation baseline; never used
    by the OPE scheme. *)

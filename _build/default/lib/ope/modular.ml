let check_m m = if m <= 0 then invalid_arg "Modular: m must be positive"

let normalize ~m x =
  check_m m;
  let r = x mod m in
  if r < 0 then r + m else r

let add ~m a b = normalize ~m (normalize ~m a + normalize ~m b)

let sub ~m a b = normalize ~m (normalize ~m a - normalize ~m b)

let interval_length ~m ~lo ~hi =
  check_m m;
  let lo = normalize ~m lo and hi = normalize ~m hi in
  if lo <= hi then hi - lo + 1 else m - lo + hi + 1

let mem ~m ~lo ~hi x =
  check_m m;
  let lo = normalize ~m lo and hi = normalize ~m hi and x = normalize ~m x in
  if lo <= hi then lo <= x && x <= hi else x >= lo || x <= hi

let segments ~m ~lo ~hi =
  check_m m;
  let lo = normalize ~m lo and hi = normalize ~m hi in
  if lo <= hi then [ (lo, hi) ] else [ (lo, m - 1); (0, hi) ]

let forward_distance ~m a b = sub ~m b a

let distance ~m a b =
  let d = forward_distance ~m a b in
  Int.min d (m - d)

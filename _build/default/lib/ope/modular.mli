(** Arithmetic on the cyclic domain [\[0, m)].

    MOPE range queries may "wrap around" the space (paper §3): an interval
    [(lo, hi)] with [hi < lo] denotes [\[lo, m) ∪ [0, hi\]]. These helpers give
    wrap-aware membership, lengths, distances and segment decomposition, and
    are shared by the query algorithms, the proxy, the database rewrites and
    the attacks. All intervals here are {e inclusive} on both ends. *)

val normalize : m:int -> int -> int
(** Reduce any integer into [\[0, m)] (handles negatives). *)

val add : m:int -> int -> int -> int
(** Modular addition into [\[0, m)]. *)

val sub : m:int -> int -> int -> int
(** Modular subtraction into [\[0, m)]. *)

val interval_length : m:int -> lo:int -> hi:int -> int
(** Number of elements of the inclusive modular interval [(lo, hi)];
    [m] when [lo = add hi 1] would make it the full circle — by convention an
    interval never denotes the empty set, and [lo = hi] has length 1. *)

val mem : m:int -> lo:int -> hi:int -> int -> bool
(** Wrap-aware membership of a point in the inclusive interval. *)

val segments : m:int -> lo:int -> hi:int -> (int * int) list
(** Decompose into one or two non-wrapping inclusive segments:
    [\[(lo,hi)\]] when [lo ≤ hi], else [\[(lo, m−1); (0, hi)\]]. *)

val distance : m:int -> int -> int -> int
(** Circular distance [min(|a−b|, m−|a−b|)]. *)

val forward_distance : m:int -> int -> int -> int
(** Steps from [a] forward (increasing, wrapping) to reach [b]. *)

lib/ope/mope.ml: Drbg Hmac List Modular Mope_crypto Ope

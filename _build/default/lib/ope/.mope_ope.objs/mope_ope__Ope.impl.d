lib/ope/ope.ml: Array Drbg Hashtbl Hypergeometric Mope_crypto Mope_stats

lib/ope/modular.mli:

lib/ope/modular.ml: Int

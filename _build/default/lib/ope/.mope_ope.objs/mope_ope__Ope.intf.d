lib/ope/ope.mli:

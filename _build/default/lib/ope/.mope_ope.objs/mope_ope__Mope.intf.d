lib/ope/mope.mli:

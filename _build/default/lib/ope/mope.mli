(** Modular order-preserving encryption (paper §2.2).

    [MOPE.encrypt m = OPE.encrypt ((m + j) mod M)] where the secret offset
    [j ∈ [0, M)] is part of the key. Ciphertexts preserve the {e modular}
    order of plaintexts; range queries may wrap around the ciphertext space
    and the scheme supports them natively ({!encrypt_range}). *)

type t

val create : ?cache:bool -> key:string -> domain:int -> range:int -> unit -> t
(** Derive both the OPE key and the secret offset pseudorandomly from [key].
    Same parameter constraints as {!Ope.create}. *)

val create_with_offset :
  ?cache:bool -> key:string -> domain:int -> range:int -> offset:int -> unit -> t
(** Fix the offset explicitly (used by experiments that sweep it). *)

val domain : t -> int
val range : t -> int

val offset : t -> int
(** The secret displacement [j]. Exposed for experiments and tests only — a
    deployment would keep it inside the proxy. *)

val encrypt : t -> int -> int
(** [encrypt t m] for [m ∈ [0, domain)]. *)

val decrypt : t -> int -> int
(** Inverse on the image; raises {!Ope.Not_a_ciphertext} elsewhere. *)

val encrypt_range : t -> lo:int -> hi:int -> int * int
(** [encrypt_range t ~lo ~hi] encrypts the inclusive (possibly wrapping)
    plaintext interval into its pair of ciphertext endpoints [(cL, cR)].
    When the shifted interval wraps the domain, [cR < cL] and the server
    must interpret the ciphertext interval modularly (paper §3). *)

val ciphertext_segments : t -> lo:int -> hi:int -> (int * int) list
(** The one or two non-wrapping inclusive ciphertext segments covering the
    plaintext interval — directly usable as B-tree scan bounds. *)

open Mope_crypto

type t = {
  ope : Ope.t;
  offset : int;
  m : int;
}

let derive_subkey key label = Hmac.mac ~key ("mope:" ^ label)

let create_with_offset ?cache ~key ~domain ~range ~offset () =
  if offset < 0 || offset >= domain then invalid_arg "Mope.create_with_offset: offset";
  let ope_key = derive_subkey key "ope-subkey" in
  { ope = Ope.create ?cache ~key:ope_key ~domain ~range (); offset; m = domain }

let create ?cache ~key ~domain ~range () =
  let coins = Drbg.create ~key:(derive_subkey key "offset") ~context:"j" in
  let offset = Drbg.uniform coins domain in
  create_with_offset ?cache ~key ~domain ~range ~offset ()

let domain t = t.m
let range t = Ope.range t.ope
let offset t = t.offset

let encrypt t m =
  if m < 0 || m >= t.m then invalid_arg "Mope.encrypt: plaintext out of domain";
  Ope.encrypt t.ope (Modular.add ~m:t.m m t.offset)

let decrypt t c = Modular.sub ~m:t.m (Ope.decrypt t.ope c) t.offset

let encrypt_range t ~lo ~hi =
  (encrypt t (Modular.normalize ~m:t.m lo), encrypt t (Modular.normalize ~m:t.m hi))

let ciphertext_segments t ~lo ~hi =
  let shifted_lo = Modular.add ~m:t.m lo t.offset
  and shifted_hi = Modular.add ~m:t.m hi t.offset in
  (* Decompose the shifted plaintext interval, then encrypt each segment's
     endpoints: within a non-wrapping segment OPE preserves plain order. *)
  Modular.segments ~m:t.m ~lo:shifted_lo ~hi:shifted_hi
  |> List.map (fun (a, b) -> (Ope.encrypt t.ope a, Ope.encrypt t.ope b))

lib/db/date.ml: Int Printf String

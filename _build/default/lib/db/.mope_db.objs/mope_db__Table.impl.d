lib/db/table.ml: Array Btree Bytes Hashtbl Printf Schema Value

lib/db/sql_lexer.ml: Buffer Hashtbl List Printf String

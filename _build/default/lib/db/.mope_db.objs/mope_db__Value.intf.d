lib/db/value.mli: Date Format

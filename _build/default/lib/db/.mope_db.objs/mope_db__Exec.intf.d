lib/db/exec.mli: Sql_ast Table Value

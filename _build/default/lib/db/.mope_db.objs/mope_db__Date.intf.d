lib/db/date.mli:

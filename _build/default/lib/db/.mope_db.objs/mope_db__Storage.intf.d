lib/db/storage.mli: Database

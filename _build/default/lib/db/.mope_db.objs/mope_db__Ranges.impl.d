lib/db/ranges.ml: Int List

lib/db/sql_parser.ml: Array Date List Option Printf Sql_ast Sql_lexer String Value

lib/db/exec.ml: Array Btree Eval Hashtbl List Option Printf Ranges Schema Sql_ast Table Value

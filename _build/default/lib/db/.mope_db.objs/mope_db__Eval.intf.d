lib/db/eval.mli: Sql_ast Value

lib/db/eval.ml: Array Hashtbl List Printf Sql_ast Value

lib/db/sql_ast.mli: Value

lib/db/value.ml: Bool Date Float Format Int Printf String

lib/db/btree.ml: Array List

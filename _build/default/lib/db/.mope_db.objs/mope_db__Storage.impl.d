lib/db/storage.ml: Array Buffer Char Database Int64 List Printf Schema String Sys Table Value

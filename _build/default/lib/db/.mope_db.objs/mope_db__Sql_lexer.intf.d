lib/db/sql_lexer.mli:

lib/db/table.mli: Btree Schema Value

lib/db/sql_parser.mli: Sql_ast

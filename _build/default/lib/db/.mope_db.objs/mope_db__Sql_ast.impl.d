lib/db/sql_ast.ml: Buffer Date List Printf String Value

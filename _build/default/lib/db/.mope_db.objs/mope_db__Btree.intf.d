lib/db/btree.mli:

lib/db/database.mli: Exec Schema Sql_ast Table Value

lib/db/schema.ml: Array Format Hashtbl List String Value

lib/db/database.ml: Array Eval Exec Fun Hashtbl List Schema Sql_ast Sql_parser Table Value

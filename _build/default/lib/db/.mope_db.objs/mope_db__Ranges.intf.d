lib/db/ranges.mli:

(** On-disk persistence for a {!Database.t}.

    A versioned, self-describing binary format (no [Marshal], so files are
    stable across compiler versions): header magic, then each table's name,
    schema, live rows and indexed columns. Indexes are rebuilt on load;
    tombstoned rows are compacted away, so row ids are not stable across a
    save/load cycle (documented — nothing in the engine exposes ids). *)

exception Corrupt of string
(** Raised by {!load} on malformed input, with a human-readable reason. *)

val save : Database.t -> path:string -> unit
(** Write the whole database atomically (temp file + rename). *)

val load : path:string -> Database.t
(** Read a database written by {!save}; rebuilds all indexes. *)

val save_string : Database.t -> string
(** The serialized bytes (used by {!save} and the tests). *)

val load_string : string -> Database.t

(** Planner and executor.

    Planning is deliberately PostgreSQL-shaped where the paper depends on it:
    sargable predicates (comparisons, BETWEEN, and OR-trees of ranges on one
    column — the proxy's batched multi-range queries) become B+-tree
    index scans with merged disjoint intervals; equality predicates across
    tables become hash joins; everything else falls back to filtered
    sequential scans and nested loops. Uncorrelated [IN (SELECT …)]
    subqueries are materialized once into hash sets (how we express TPC-H
    Q4's semi-join). *)

exception Exec_error of string

type stats = {
  mutable queries : int;       (** statements executed (excluding subqueries) *)
  mutable seq_scans : int;
  mutable index_scans : int;   (** index-scan operators *)
  mutable index_ranges : int;  (** disjoint intervals walked by index scans *)
  mutable rows_scanned : int;  (** rows touched before filtering *)
  mutable rows_returned : int; (** rows in final results *)
}

val create_stats : unit -> stats
val reset_stats : stats -> unit

type result = {
  columns : string list;
  rows : Value.t array list;
}

type plan_info = {
  access_paths : string list;
  (** One human-readable line per FROM item, e.g.
      ["lineitem: index scan on l_shipdate (2 ranges)"]. *)
}

val run :
  catalog:(string -> Table.t option) ->
  stats:stats ->
  Sql_ast.select ->
  result

val explain :
  catalog:(string -> Table.t option) ->
  Sql_ast.select ->
  plan_info
(** Describe the chosen access paths without executing. *)

(** Compilation of SQL expressions to closures over runtime rows. *)

exception Eval_error of string

type env = {
  resolve : string option * string -> int;
  (** Map an (optionally qualified) column reference to an offset in the
      runtime row; must raise {!Eval_error} for unknown/ambiguous names. *)
}

val compile :
  subquery:(Sql_ast.select -> Value.t list) ->
  env ->
  Sql_ast.expr ->
  Value.t array -> Value.t
(** [compile ~subquery env e] resolves names and materializes uncorrelated
    [IN (SELECT …)] subqueries once (via [subquery]), returning a closure to
    evaluate per row. [Agg] nodes raise {!Eval_error} — the executor
    substitutes them before compiling aggregate projections.

    Semantics: arithmetic promotes Int→Float as needed ([/] always yields
    Float); [Date ± Int] shifts by days; any [Null] operand nullifies
    arithmetic; comparisons and predicates involving [Null] are [false]
    (two-valued logic — documented deviation from SQL's three-valued). *)

val truthy : Value.t -> bool
(** [Bool true] is true; everything else (including [Null]) is false. *)

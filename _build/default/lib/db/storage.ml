exception Corrupt of string

let magic = "MOPEDB\x01\n"

(* ------------------------------------------------------------------ *)
(* Primitive encoders *)

let put_int64 buf v =
  for byte = 0 to 7 do
    let shift = 8 * (7 - byte) in
    Buffer.add_char buf
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v shift) 0xFFL)))
  done

let put_int buf v = put_int64 buf (Int64.of_int v)

let put_string buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

let ty_tag = function
  | Value.TBool -> 0
  | Value.TInt -> 1
  | Value.TFloat -> 2
  | Value.TStr -> 3
  | Value.TDate -> 4

let ty_of_tag = function
  | 0 -> Value.TBool
  | 1 -> Value.TInt
  | 2 -> Value.TFloat
  | 3 -> Value.TStr
  | 4 -> Value.TDate
  | n -> raise (Corrupt (Printf.sprintf "unknown type tag %d" n))

let put_value buf = function
  | Value.Null -> Buffer.add_char buf '\x00'
  | Value.Bool b ->
    Buffer.add_char buf '\x01';
    Buffer.add_char buf (if b then '\x01' else '\x00')
  | Value.Int i ->
    Buffer.add_char buf '\x02';
    put_int buf i
  | Value.Float f ->
    Buffer.add_char buf '\x03';
    put_int64 buf (Int64.bits_of_float f)
  | Value.Str s ->
    Buffer.add_char buf '\x04';
    put_string buf s
  | Value.Date d ->
    Buffer.add_char buf '\x05';
    put_int buf d

(* ------------------------------------------------------------------ *)
(* Primitive decoders over a cursor *)

type cursor = { data : string; mutable pos : int }

let need cur n =
  if cur.pos + n > String.length cur.data then raise (Corrupt "truncated input")

let get_byte cur =
  need cur 1;
  let b = Char.code cur.data.[cur.pos] in
  cur.pos <- cur.pos + 1;
  b

let get_int64 cur =
  need cur 8;
  let v = ref 0L in
  for _ = 1 to 8 do
    v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (get_byte cur))
  done;
  !v

let get_int cur =
  let v = get_int64 cur in
  let i = Int64.to_int v in
  if Int64.of_int i <> v then raise (Corrupt "integer out of range");
  i

(* Non-negative integers: sizes, counts, tags. *)
let get_nat cur =
  let v = get_int cur in
  if v < 0 then raise (Corrupt "negative size");
  v

let get_string cur =
  let len = get_nat cur in
  need cur len;
  let s = String.sub cur.data cur.pos len in
  cur.pos <- cur.pos + len;
  s

let get_value cur =
  match get_byte cur with
  | 0 -> Value.Null
  | 1 -> Value.Bool (get_byte cur = 1)
  | 2 -> Value.Int (get_int cur)
  | 3 -> Value.Float (Int64.float_of_bits (get_int64 cur))
  | 4 -> Value.Str (get_string cur)
  | 5 -> Value.Date (get_int cur)
  | n -> raise (Corrupt (Printf.sprintf "unknown value tag %d" n))

(* ------------------------------------------------------------------ *)

let save_string db =
  let buf = Buffer.create (1 lsl 16) in
  Buffer.add_string buf magic;
  let names = Database.tables db in
  put_int buf (List.length names);
  List.iter
    (fun name ->
      let table = Database.table_exn db name in
      let schema = Table.schema table in
      put_string buf name;
      let columns = Schema.columns schema in
      put_int buf (List.length columns);
      List.iter
        (fun c ->
          put_string buf c.Schema.name;
          put_int buf (ty_tag c.Schema.ty))
        columns;
      put_int buf (Table.length table);
      Table.iter table (fun _ row -> Array.iter (put_value buf) row);
      let indexed =
        List.map
          (fun col -> (Schema.column_at schema col).Schema.name)
          (Table.indexed_columns table)
        |> List.sort compare
      in
      put_int buf (List.length indexed);
      List.iter (put_string buf) indexed)
    names;
  Buffer.contents buf

let load_string data =
  let cur = { data; pos = 0 } in
  need cur (String.length magic);
  if String.sub data 0 (String.length magic) <> magic then
    raise (Corrupt "bad magic header");
  cur.pos <- String.length magic;
  let db = Database.create () in
  let n_tables = get_nat cur in
  for _ = 1 to n_tables do
    let name = get_string cur in
    let n_cols = get_nat cur in
    if n_cols <= 0 then raise (Corrupt "table with no columns");
    let columns =
      List.init n_cols (fun _ ->
          let col_name = get_string cur in
          let ty = ty_of_tag (get_nat cur) in
          { Schema.name = col_name; ty })
    in
    let schema =
      try Schema.make columns
      with Invalid_argument msg -> raise (Corrupt msg)
    in
    let table =
      try Database.create_table db ~name ~schema
      with Invalid_argument msg -> raise (Corrupt msg)
    in
    let n_rows = get_nat cur in
    for _ = 1 to n_rows do
      (* Explicit loop: Array.init's evaluation order is unspecified. *)
      let row = Array.make n_cols Value.Null in
      for i = 0 to n_cols - 1 do
        row.(i) <- get_value cur
      done;
      match Table.insert table row with
      | _ -> ()
      | exception Invalid_argument msg -> raise (Corrupt msg)
    done;
    let n_indexes = get_nat cur in
    for _ = 1 to n_indexes do
      let column = get_string cur in
      match Table.create_index table column with
      | () -> ()
      | exception Invalid_argument msg -> raise (Corrupt msg)
    done
  done;
  if cur.pos <> String.length data then raise (Corrupt "trailing bytes");
  db

let save db ~path =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try output_string oc (save_string db)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  Sys.rename tmp path

let load ~path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let data = really_input_string ic len in
  close_in ic;
  load_string data

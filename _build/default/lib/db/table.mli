(** In-memory row store with optional B+-tree indexes on integer-ordered
    columns (INT and DATE — and therefore also MOPE ciphertext columns,
    which are plain INTs to the server). *)

type t

val create : name:string -> schema:Schema.t -> t

val name : t -> string
val schema : t -> Schema.t

val length : t -> int
(** Number of live (non-deleted) rows. *)

val insert : t -> Value.t array -> int
(** Append a row (validated against the schema), updating all indexes;
    returns the row id. Raises [Invalid_argument] on schema mismatch. *)

val get : t -> int -> Value.t array
(** Row by id. Raises [Invalid_argument] for out-of-bounds or deleted ids. *)

val iter : t -> (int -> Value.t array -> unit) -> unit
(** Iterate live rows in id order. *)

val delete : t -> int -> bool
(** Tombstone a row by id, removing its index entries; [false] if already
    deleted. Row ids are never reused. *)

val update : t -> int -> Value.t array -> unit
(** Replace a live row in place, maintaining all indexes. Raises on schema
    mismatch or deleted/out-of-bounds ids. *)

val is_deleted : t -> int -> bool

val create_index : t -> string -> unit
(** Build a B+-tree over an existing INT or DATE column (no-op if one
    already exists). Nulls are skipped. *)

val index_on : t -> int -> Btree.t option
(** Index over the column at a position, if any. *)

val indexed_columns : t -> int list

(** Calendar dates as days since 1970-01-01 (proleptic Gregorian).

    The TPC-H experiments encrypt a date attribute whose effective domain is
    the days of 1992-01-01 … 1998-12-31; the MOPE plaintext space is the
    day-offset within that window. *)

type t = int
(** Days since the civil epoch 1970-01-01; may be negative. *)

val of_ymd : int -> int -> int -> t
(** [of_ymd year month day]; validates the calendar date. *)

val to_ymd : t -> int * int * int

val of_string : string -> t
(** Parse ["YYYY-MM-DD"]. Raises [Invalid_argument] on malformed input. *)

val to_string : t -> string
(** Render as ["YYYY-MM-DD"]. *)

val add_days : t -> int -> t

val add_months : t -> int -> t
(** Calendar-month addition, clamping the day-of-month (Jan 31 + 1 month =
    Feb 28/29), matching SQL interval semantics. *)

val add_years : t -> int -> t

val is_leap : int -> bool

val days_in_month : int -> int -> int
(** [days_in_month year month]. *)

(** B+-tree multi-map from integer keys to integer payloads (row ids).

    The index structure the server builds over the MOPE-encrypted column —
    ciphertexts are plain integers, so an ordinary comparison-based index
    works on them unmodified, which is the whole point of (M)OPE. Leaves are
    chained for ordered range scans; duplicate keys are supported (several
    rows may share an encrypted value only if the plaintext column has
    duplicates — the OPE function itself is injective).

    Deletion removes an entry in place without rebalancing (leaves may go
    under-full); the workloads here are bulk-load-then-query, and lookups
    remain correct regardless. *)

type t

val create : unit -> t

val count : t -> int
(** Number of stored entries. *)

val insert : t -> key:int -> value:int -> unit

val delete : t -> key:int -> value:int -> bool
(** Remove one matching (key, value) entry; [false] if absent. *)

val find_all : t -> int -> int list
(** All payloads stored under exactly this key, in insertion-scan order. *)

val mem : t -> int -> bool

val min_key : t -> int option
val max_key : t -> int option

val range_fold : t -> lo:int -> hi:int -> init:'a -> f:('a -> int -> int -> 'a) -> 'a
(** [range_fold t ~lo ~hi ~init ~f] folds [f acc key value] over all entries
    with [lo ≤ key ≤ hi], in non-decreasing key order. *)

val range_list : t -> lo:int -> hi:int -> (int * int) list
(** Materialized {!range_fold}. *)

val height : t -> int
(** Tree height (1 = a single leaf); exposed for tests. *)

val check_invariants : t -> unit
(** Assert key ordering, fan-out bounds and leaf-chain consistency; raises
    [Failure] on violation. Test hook. *)

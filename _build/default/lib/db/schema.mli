(** Table schemas: ordered, named, typed columns. *)

type column = { name : string; ty : Value.ty }

type t

val make : column list -> t
(** Duplicate column names are rejected. *)

val columns : t -> column list

val arity : t -> int

val index_of : t -> string -> int
(** Position of a column by name; raises [Not_found]. *)

val find : t -> string -> column option

val column_at : t -> int -> column

val check_row : t -> Value.t array -> bool
(** Arity matches and every non-null value has the declared type. *)

val pp : Format.formatter -> t -> unit

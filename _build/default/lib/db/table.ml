type t = {
  name : string;
  schema : Schema.t;
  mutable rows : Value.t array array; (* doubling array; [||] sentinel slots *)
  mutable nrows : int;                (* slots used, including tombstones *)
  mutable live : int;                 (* rows not deleted *)
  mutable deleted : Bytes.t;          (* tombstone bitmap, 1 byte per slot *)
  indexes : (int, Btree.t) Hashtbl.t;
}

let create ~name ~schema =
  { name; schema;
    rows = Array.make 16 [||];
    nrows = 0;
    live = 0;
    deleted = Bytes.make 16 '\x00';
    indexes = Hashtbl.create 4 }

let name t = t.name
let schema t = t.schema
let length t = t.live

let is_deleted t id = Bytes.get t.deleted id = '\x01'

let ensure_capacity t =
  if t.nrows = Array.length t.rows then begin
    let bigger = Array.make (2 * Array.length t.rows) [||] in
    Array.blit t.rows 0 bigger 0 t.nrows;
    t.rows <- bigger;
    let bigger_deleted = Bytes.make (2 * Bytes.length t.deleted) '\x00' in
    Bytes.blit t.deleted 0 bigger_deleted 0 t.nrows;
    t.deleted <- bigger_deleted
  end

let index_key v =
  match v with
  | Value.Int i -> Some i
  | Value.Date d -> Some d
  | Value.Null | Value.Bool _ | Value.Float _ | Value.Str _ -> None

let index_insert t row id =
  Hashtbl.iter
    (fun col btree ->
      match index_key row.(col) with
      | Some key -> Btree.insert btree ~key ~value:id
      | None -> ())
    t.indexes

let index_remove t row id =
  Hashtbl.iter
    (fun col btree ->
      match index_key row.(col) with
      | Some key -> ignore (Btree.delete btree ~key ~value:id)
      | None -> ())
    t.indexes

let insert t row =
  if not (Schema.check_row t.schema row) then
    invalid_arg (Printf.sprintf "Table.insert(%s): row does not match schema" t.name);
  ensure_capacity t;
  let id = t.nrows in
  t.rows.(id) <- row;
  t.nrows <- t.nrows + 1;
  t.live <- t.live + 1;
  index_insert t row id;
  id

let get t id =
  if id < 0 || id >= t.nrows then invalid_arg "Table.get: row id out of bounds";
  if is_deleted t id then invalid_arg "Table.get: row was deleted";
  t.rows.(id)

let iter t f =
  for id = 0 to t.nrows - 1 do
    if not (is_deleted t id) then f id t.rows.(id)
  done

let delete t id =
  if id < 0 || id >= t.nrows then invalid_arg "Table.delete: row id out of bounds";
  if is_deleted t id then false
  else begin
    index_remove t t.rows.(id) id;
    Bytes.set t.deleted id '\x01';
    t.live <- t.live - 1;
    (* Drop the payload so the memory can be reclaimed. *)
    t.rows.(id) <- [||];
    true
  end

let update t id row =
  if id < 0 || id >= t.nrows then invalid_arg "Table.update: row id out of bounds";
  if is_deleted t id then invalid_arg "Table.update: row was deleted";
  if not (Schema.check_row t.schema row) then
    invalid_arg (Printf.sprintf "Table.update(%s): row does not match schema" t.name);
  index_remove t t.rows.(id) id;
  t.rows.(id) <- row;
  index_insert t row id

let create_index t column =
  let col =
    match Schema.find t.schema column with
    | Some _ -> Schema.index_of t.schema column
    | None ->
      invalid_arg
        (Printf.sprintf "Table.create_index(%s): unknown column %s" t.name column)
  in
  (match (Schema.column_at t.schema col).Schema.ty with
  | Value.TInt | Value.TDate -> ()
  | Value.TBool | Value.TFloat | Value.TStr ->
    invalid_arg
      (Printf.sprintf "Table.create_index(%s.%s): only INT and DATE columns"
         t.name column));
  if not (Hashtbl.mem t.indexes col) then begin
    let btree = Btree.create () in
    iter t (fun id row ->
        match index_key row.(col) with
        | Some key -> Btree.insert btree ~key ~value:id
        | None -> ());
    Hashtbl.replace t.indexes col btree
  end

let index_on t col = Hashtbl.find_opt t.indexes col

let indexed_columns t = Hashtbl.fold (fun col _ acc -> col :: acc) t.indexes []

open Sql_ast

exception Eval_error of string

type env = { resolve : string option * string -> int }

let error fmt = Printf.ksprintf (fun msg -> raise (Eval_error msg)) fmt

let truthy = function Value.Bool b -> b | _ -> false

let arith op a b =
  let open Value in
  match (a, b) with
  | Null, _ | _, Null -> Null
  | Int x, Int y -> begin
    match op with
    | Add -> Int (x + y)
    | Sub -> Int (x - y)
    | Mul -> Int (x * y)
    | Div ->
      if y = 0 then Null else Float (float_of_int x /. float_of_int y)
  end
  | Date d, Int n -> begin
    match op with
    | Add -> Date (d + n)
    | Sub -> Date (d - n)
    | Mul | Div -> error "cannot %s a date" (match op with Mul -> "multiply" | _ -> "divide")
  end
  | Int n, Date d when op = Add -> Date (d + n)
  | Date d1, Date d2 when op = Sub -> Int (d1 - d2)
  | (Int _ | Float _ | Bool _), (Int _ | Float _ | Bool _) -> begin
    let x = to_float a and y = to_float b in
    match op with
    | Add -> Float (x +. y)
    | Sub -> Float (x -. y)
    | Mul -> Float (x *. y)
    | Div -> if y = 0.0 then Null else Float (x /. y)
  end
  | _ ->
    error "type error in arithmetic: %s %s" (Value.to_string a) (Value.to_string b)

let compare_values op a b =
  if Value.is_null a || Value.is_null b then Value.Bool false
  else begin
    let c = Value.compare a b in
    let r =
      match op with
      | Eq -> c = 0
      | Ne -> c <> 0
      | Lt -> c < 0
      | Le -> c <= 0
      | Gt -> c > 0
      | Ge -> c >= 0
    in
    Value.Bool r
  end

let rec compile ~subquery env expr =
  match expr with
  | Lit v -> fun _ -> v
  | Col (q, name) ->
    let offset = env.resolve (q, name) in
    fun row -> row.(offset)
  | Binop (op, a, b) ->
    let fa = compile ~subquery env a and fb = compile ~subquery env b in
    fun row -> arith op (fa row) (fb row)
  | Cmp (op, a, b) ->
    let fa = compile ~subquery env a and fb = compile ~subquery env b in
    fun row -> compare_values op (fa row) (fb row)
  | And (a, b) ->
    let fa = compile ~subquery env a and fb = compile ~subquery env b in
    fun row -> Value.Bool (truthy (fa row) && truthy (fb row))
  | Or (a, b) ->
    let fa = compile ~subquery env a and fb = compile ~subquery env b in
    fun row -> Value.Bool (truthy (fa row) || truthy (fb row))
  | Not a ->
    let fa = compile ~subquery env a in
    fun row -> Value.Bool (not (truthy (fa row)))
  | Between (e, lo, hi) ->
    let fe = compile ~subquery env e in
    let flo = compile ~subquery env lo and fhi = compile ~subquery env hi in
    fun row ->
      let v = fe row in
      Value.Bool
        (truthy (compare_values Ge v (flo row)) && truthy (compare_values Le v (fhi row)))
  | In_list (e, es) ->
    let fe = compile ~subquery env e in
    let fs = List.map (compile ~subquery env) es in
    fun row ->
      let v = fe row in
      Value.Bool
        ((not (Value.is_null v))
        && List.exists (fun f -> truthy (compare_values Eq v (f row))) fs)
  | In_select (e, select) ->
    let fe = compile ~subquery env e in
    (* Uncorrelated: materialize once at compile time into a hash set. *)
    let members = Hashtbl.create 1024 in
    List.iter (fun v -> Hashtbl.replace members v ()) (subquery select);
    fun row ->
      let v = fe row in
      Value.Bool ((not (Value.is_null v)) && Hashtbl.mem members v)
  | Like (e, pattern) ->
    let fe = compile ~subquery env e in
    fun row -> Value.Bool (Value.like (fe row) ~pattern)
  | Case (arms, else_) ->
    let arms =
      List.map
        (fun (c, v) -> (compile ~subquery env c, compile ~subquery env v))
        arms
    in
    let felse =
      match else_ with
      | Some e -> compile ~subquery env e
      | None -> fun _ -> Value.Null
    in
    fun row ->
      let rec try_arms = function
        | [] -> felse row
        | (fc, fv) :: rest -> if truthy (fc row) then fv row else try_arms rest
      in
      try_arms arms
  | Is_null e ->
    let fe = compile ~subquery env e in
    fun row -> Value.Bool (Value.is_null (fe row))
  | Agg _ -> error "aggregate used outside an aggregate context"

(** Hand-written lexer for the SQL subset. *)

type token =
  | IDENT of string      (** lower-cased identifier or non-reserved word *)
  | KEYWORD of string    (** upper-cased reserved word, e.g. "SELECT" *)
  | INT of int
  | FLOAT of float
  | STRING of string     (** contents of a ['...'] literal, quotes removed *)
  | SYMBOL of string     (** one of ( ) , . * + - / = <> != < <= > >= *)
  | EOF

exception Lex_error of string * int
(** Message and byte offset. *)

val tokenize : string -> token list
(** Lex a full statement; always ends with [EOF]. Raises {!Lex_error}. *)

val is_keyword : string -> bool
(** Whether an upper-cased word is reserved. *)

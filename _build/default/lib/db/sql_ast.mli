(** Abstract syntax of the SQL subset the engine executes.

    Covers what the paper's prototype needs from PostgreSQL: single- and
    two-table SELECTs with arithmetic, comparisons, BETWEEN, IN (lists and
    uncorrelated subqueries), LIKE, CASE, aggregates, GROUP BY, ORDER BY,
    LIMIT — in particular the TPC-H templates Q4/Q6/Q14 and the proxy's
    multi-range disjunction rewrites. *)

type binop = Add | Sub | Mul | Div

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type agg_kind = Count | Sum | Avg | Min | Max

type expr =
  | Lit of Value.t
  | Col of string option * string
      (** optionally qualified column reference [t.c] or [c] *)
  | Binop of binop * expr * expr
  | Cmp of cmp * expr * expr
  | And of expr * expr
  | Or of expr * expr
  | Not of expr
  | Between of expr * expr * expr  (** [Between (e, lo, hi)], inclusive *)
  | In_list of expr * expr list
  | In_select of expr * select     (** uncorrelated [IN (SELECT …)] *)
  | Like of expr * string
  | Case of (expr * expr) list * expr option
      (** [CASE WHEN c THEN e …\[ELSE e\] END] *)
  | Is_null of expr                (** [e IS NULL]; [IS NOT NULL] parses to [Not] *)
  | Agg of agg_kind * expr option  (** [None] encodes [COUNT], star form *)

and select = {
  distinct : bool;
  projections : projection list;
  from : from_item list;
  where : expr option;
  group_by : expr list;
  having : expr option;   (** filter over groups; may contain aggregates *)
  order_by : (expr * order) list;
  limit : int option;
}

and projection = Star | Proj of expr * string option

and from_item = { table : string; alias : string option }

and order = Asc | Desc

val conjuncts : expr -> expr list
(** Flatten a tree of [And] into its conjuncts. *)

val disjuncts : expr -> expr list
(** Flatten a tree of [Or] into its disjuncts. *)

val or_of_list : expr list -> expr
(** Right-fold a non-empty list back into [Or]s. *)

val and_of_list : expr list -> expr
(** Right-fold a non-empty list back into [And]s. *)

val has_aggregate : expr -> bool
(** Whether an [Agg] node occurs (outside nested selects). *)

val expr_to_string : expr -> string
(** Render back to parseable SQL (used for logging and parser round-trip
    tests). *)

val select_to_string : select -> string

(** {2 Statements beyond SELECT}

    The DML/DDL subset the engine accepts: CREATE TABLE / CREATE INDEX,
    INSERT … VALUES, DELETE, UPDATE and DROP TABLE. *)

type statement =
  | Select_stmt of select
  | Insert_stmt of {
      table : string;
      columns : string list option;  (** [None] = schema order *)
      rows : expr list list;         (** constant expressions only *)
    }
  | Create_table_stmt of {
      table : string;
      columns : (string * Value.ty) list;
    }
  | Create_index_stmt of { table : string; column : string }
  | Delete_stmt of { table : string; where : expr option }
  | Update_stmt of {
      table : string;
      assignments : (string * expr) list;
      where : expr option;
    }
  | Drop_table_stmt of string

val ty_keyword : Value.ty -> string
(** SQL type name used by the printer ([INTEGER], [FLOAT], [TEXT],
    [BOOLEAN], [DATE]). *)

val statement_to_string : statement -> string
(** Parseable rendering of any statement. *)

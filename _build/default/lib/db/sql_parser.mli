(** Recursive-descent parser for the SQL subset (see {!Sql_ast}). *)

exception Parse_error of string
(** Raised with a human-readable message on malformed input. *)

val parse : string -> Sql_ast.select
(** Parse one SELECT statement (an optional trailing [;] is accepted). *)

val parse_expr : string -> Sql_ast.expr
(** Parse a standalone expression — handy for tests and for building
    predicates programmatically. *)

val parse_statement : string -> Sql_ast.statement
(** Parse any supported statement: SELECT, INSERT … VALUES, CREATE TABLE,
    CREATE INDEX, DELETE, UPDATE, DROP TABLE. *)

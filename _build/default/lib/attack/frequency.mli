(** Frequency analysis against deterministic (DET) encryption.

    The prototype DET-encrypts join keys so the server can evaluate
    equalities. DET preserves the plaintext {e multiset} structure, so an
    adversary who knows (or can estimate) the plaintext frequency
    distribution can match ciphertexts to plaintexts by rank — the classic
    inference attack of Naveed–Kamara–Wright (CCS'15) that makes DET safe
    only for high-entropy columns. This module implements the attack and an
    experiment quantifying recovery rate as a function of the column's
    skew, justifying the repo's choice to DET-encrypt only (near-unique)
    keys. *)

val attack :
  ciphertexts:int list ->
  known_frequencies:(int * float) list ->
  (int * int) list
(** [attack ~ciphertexts ~known_frequencies] sorts ciphertext values by
    observed frequency and plaintexts by known frequency and matches them
    rank-for-rank; returns [(ciphertext, guessed_plaintext)] pairs for the
    [min] of the two support sizes. *)

type outcome = {
  recovered : float;
  (** Fraction of ciphertext {e occurrences} whose plaintext was guessed
      correctly. *)
  distinct_recovered : float;
  (** Fraction of distinct ciphertext values guessed correctly. *)
}

val experiment :
  domain:int ->
  zipf_s:float ->
  n_rows:int ->
  trials:int ->
  seed:int64 ->
  outcome
(** Encrypt [n_rows] draws from a Zipf([zipf_s]) column with a fresh DET key
    per trial, hand the adversary the true Zipf frequencies, and measure
    recovery. [zipf_s = 0] is a uniform (high-entropy) column — recovery
    collapses to chance; skew makes it devastating. *)

(** Empirical window one-wayness experiments with queries (paper §7.2,
    Fig. 17): WOW*-L (location) and WOW*-D (distance).

    Each trial samples a fresh key/offset, a random database of [n] distinct
    plaintexts, encrypts it, lets a concrete adversary watch [q] encrypted
    client queries (naive, or routed through a scheduler), and challenges it
    to window the location of a random database plaintext (WOW*-L) or the
    distance between two (WOW*-D). The adversaries are the natural
    maximum-likelihood strategies:

    - location: gap-attack the query stream for an offset estimate, then
      invert the challenge ciphertext's rank among the database ciphertexts;
    - distance: scale the ciphertext-space distance by M/N.

    Theorems 3–5 bound any adversary; these give concrete lower evidence
    that the bounds are tight where the paper says they are (naive MOPE
    location ≈ certain; QueryU location ≈ w/M; distance leaks everywhere). *)

type mode =
  | Naive                               (** no fake queries *)
  | Mixed of Mope_core.Scheduler.mode   (** QueryU / QueryP\[ρ\] *)

type config = {
  m : int;           (** plaintext domain size M *)
  n : int;           (** database size *)
  w : int;           (** window size (the guess covers w+1 values) *)
  q : int;           (** client queries observed *)
  k : int;           (** fixed query length *)
  trials : int;
  seed : int64;
}

val default : config
(** M=1000, n=60, w=20, q=50, k=10, 300 trials. *)

val location_success : config -> mode -> float
(** Empirical WOW*-L success rate of the concrete adversary. *)

val distance_success : config -> mode -> float
(** Empirical WOW*-D success rate. *)

val location_bound : config -> mode -> float
(** The §7 theorem bound for the mode (w/M for QueryU — Theorem 3;
    ρw/M for QueryP — Theorem 5; 1 for naive, where no theorem protects). *)

val distance_bound : config -> float
(** Theorem 4's [8w/√(M − qk − 1)] (capped at 1). *)

val random_guess : config -> float
(** The no-information baseline [(w+1)/M]. *)

lib/attack/wow_baseline.mli:

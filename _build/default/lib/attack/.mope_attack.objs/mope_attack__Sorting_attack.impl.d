lib/attack/sorting_attack.ml: Fun Int List Mope Mope_ope Mope_stats Ope Printf Rng

lib/attack/gap_attack.ml: Array Int List Make_queries Mope Mope_core Mope_ope Mope_stats Ope Printf Query_model Rng

lib/attack/sorting_attack.mli:

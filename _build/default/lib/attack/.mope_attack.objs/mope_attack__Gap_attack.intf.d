lib/attack/gap_attack.mli: Mope_core Mope_ope

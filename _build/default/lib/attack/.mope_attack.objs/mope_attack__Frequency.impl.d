lib/attack/frequency.ml: Distributions Feistel Float Hashtbl Histogram Int List Mope_crypto Mope_stats Option Printf Rng

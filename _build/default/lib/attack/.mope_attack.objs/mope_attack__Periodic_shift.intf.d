lib/attack/periodic_shift.mli: Mope_stats

lib/attack/wow_baseline.ml: Array Float Fun Int Modular Mope Mope_ope Mope_stats Ope Printf Rng

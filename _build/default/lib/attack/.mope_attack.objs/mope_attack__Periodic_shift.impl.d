lib/attack/periodic_shift.ml: Array Float Histogram List Modular Mope_core Mope_ope Mope_stats Rng Scheduler

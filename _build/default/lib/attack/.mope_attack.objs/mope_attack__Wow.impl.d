lib/attack/wow.ml: Array Float Fun Gap_attack Histogram Int Int64 List Make_queries Modular Mope Mope_core Mope_ope Mope_stats Ope Printf Query_model Rng Scheduler

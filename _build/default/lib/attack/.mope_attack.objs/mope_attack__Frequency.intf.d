lib/attack/frequency.mli:

lib/attack/wow.mli: Mope_core

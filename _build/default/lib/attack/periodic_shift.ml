open Mope_stats
open Mope_ope
open Mope_core

type outcome = {
  class_success : float;
  full_success : float;
}

let run ~m ~k ~rho ~n_queries ~trials ~seed ~q =
  if m mod rho <> 0 then invalid_arg "Periodic_shift.run: rho must divide m";
  let scheduler = Scheduler.create ~m ~k ~mode:(Scheduler.Periodic rho) ~q in
  let target = Scheduler.perceived scheduler in
  let rng = Rng.create seed in
  let class_wins = ref 0 and full_wins = ref 0 in
  for _ = 1 to trials do
    let offset = Rng.int rng m in
    (* Observed (shifted) starts: real + fake, all shifted by the offset. *)
    let observed = ref [] in
    for _ = 1 to n_queries do
      let real = Histogram.sample q ~u:(Rng.float rng) in
      List.iter
        (fun start -> observed := Modular.add ~m start offset :: !observed)
        (Scheduler.schedule scheduler rng ~real)
    done;
    (* Maximum likelihood over all m candidate shifts: the log-likelihood of
       the observations under target shifted by j. Count observations per
       position first so each candidate costs O(#distinct positions). *)
    let counts = Array.make m 0 in
    List.iter (fun x -> counts.(x) <- counts.(x) + 1) !observed;
    let best_j = ref 0 and best_ll = ref neg_infinity in
    for j = 0 to m - 1 do
      let ll = ref 0.0 in
      for x = 0 to m - 1 do
        if counts.(x) > 0 then begin
          let p = Histogram.prob target (Modular.sub ~m x j) in
          ll := !ll +. (float_of_int counts.(x) *. log (Float.max p 1e-300))
        end
      done;
      if !ll > !best_ll then begin
        best_ll := !ll;
        best_j := j
      end
    done;
    if !best_j mod rho = offset mod rho then incr class_wins;
    if !best_j = offset then incr full_wins
  done;
  { class_success = float_of_int !class_wins /. float_of_int trials;
    full_success = float_of_int !full_wins /. float_of_int trials }

open Mope_stats
open Mope_crypto

let attack ~ciphertexts ~known_frequencies =
  let observed = Hashtbl.create 64 in
  List.iter
    (fun c ->
      Hashtbl.replace observed c
        (1 + Option.value ~default:0 (Hashtbl.find_opt observed c)))
    ciphertexts;
  let by_observed =
    Hashtbl.fold (fun c count acc -> (c, count) :: acc) observed []
    (* Sort by frequency, breaking ties by value for determinism. *)
    |> List.sort (fun (c1, n1) (c2, n2) ->
           match Int.compare n2 n1 with 0 -> Int.compare c1 c2 | c -> c)
  in
  let by_known =
    List.sort
      (fun (p1, f1) (p2, f2) ->
        match Float.compare f2 f1 with 0 -> Int.compare p1 p2 | c -> c)
      known_frequencies
  in
  let rec zip acc cs ps =
    match (cs, ps) with
    | (c, _) :: cs, (p, _) :: ps -> zip ((c, p) :: acc) cs ps
    | _, [] | [], _ -> List.rev acc
  in
  zip [] by_observed by_known

type outcome = {
  recovered : float;
  distinct_recovered : float;
}

let experiment ~domain ~zipf_s ~n_rows ~trials ~seed =
  let rng = Rng.create seed in
  let dist =
    if zipf_s <= 0.0 then Histogram.uniform domain
    else Distributions.zipf ~size:domain ~s:zipf_s
  in
  let known_frequencies =
    List.init domain (fun p -> (p, Histogram.prob dist p))
  in
  let total_occ = ref 0 and hit_occ = ref 0 in
  let total_distinct = ref 0 and hit_distinct = ref 0 in
  for trial = 1 to trials do
    let key = Printf.sprintf "freq-%d-%Ld" trial seed in
    let plaintexts =
      List.init n_rows (fun _ -> Histogram.sample dist ~u:(Rng.float rng))
    in
    let enc p = Feistel.fpe_encrypt ~key ~domain p in
    let ciphertexts = List.map enc plaintexts in
    let guesses = attack ~ciphertexts ~known_frequencies in
    let counts = Hashtbl.create 64 in
    List.iter
      (fun c ->
        Hashtbl.replace counts c
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts c)))
      ciphertexts;
    List.iter
      (fun (c, guess) ->
        let occurrences = Option.value ~default:0 (Hashtbl.find_opt counts c) in
        let correct = Feistel.fpe_decrypt ~key ~domain c = guess in
        total_occ := !total_occ + occurrences;
        total_distinct := !total_distinct + 1;
        if correct then begin
          hit_occ := !hit_occ + occurrences;
          hit_distinct := !hit_distinct + 1
        end)
      guesses
  done;
  { recovered = float_of_int !hit_occ /. float_of_int (Int.max 1 !total_occ);
    distinct_recovered =
      float_of_int !hit_distinct /. float_of_int (Int.max 1 !total_distinct) }

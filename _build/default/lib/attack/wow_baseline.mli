(** Query-free window one-wayness — the §7.1 baseline (Theorems 1–2).

    Before queries enter the picture, the paper recalls what the encrypted
    database alone reveals: basic OPE leaks roughly the upper half of each
    plaintext's bits (location) {e and} of each pairwise distance; MOPE's
    random offset erases the location leak entirely (Theorem 1 — the w/M of
    semantic security) while distances still leak (Theorem 2). These
    experiments measure concrete rank-inversion adversaries against both
    schemes with {e no query oracle}, quantifying the gap the paper's query
    algorithms must then preserve. *)

type config = {
  m : int;        (** plaintext domain size *)
  n : int;        (** database size *)
  w : int;        (** window size *)
  trials : int;
  seed : int64;
}

val default : config
(** M=1000, n=60, w=20, 300 trials. *)

type row = {
  scheme : string;       (** "OPE" or "MOPE" *)
  location : float;      (** empirical WOW-L success of the rank adversary *)
  distance : float;      (** empirical WOW-D success of the scale adversary *)
}

val run : config -> row list
(** The two rows (OPE, MOPE). Expected shape: OPE location ≫ w/M while MOPE
    location ≈ w/M; both distances ≫ nw/M. *)

val location_random_guess : config -> float
(** (w+1)/M. *)

open Mope_stats
open Mope_ope

type config = {
  m : int;
  n : int;
  w : int;
  trials : int;
  seed : int64;
}

let default = { m = 1000; n = 60; w = 20; trials = 300; seed = 404L }

type row = {
  scheme : string;
  location : float;
  distance : float;
}

let location_random_guess config =
  float_of_int (config.w + 1) /. float_of_int config.m

(* Rank-inversion adversary: with the database ciphertexts as anchors, the
   challenge's rank estimates its (shifted) plaintext; for plain OPE the
   shift is zero and this recovers location directly. *)
let rank_estimate ~m ~sorted ~n ct =
  let below = Array.fold_left (fun acc x -> if x <= ct then acc + 1 else acc) 0 sorted in
  Int.min (m - 1)
    (int_of_float
       (Float.round (float_of_int below /. float_of_int (n + 1) *. float_of_int m)))

let run config =
  let { m; n; w; trials; seed } = config in
  let rng = Rng.create seed in
  let run_scheme ~shifted =
    let loc_wins = ref 0 and dist_wins = ref 0 in
    for trial = 1 to trials do
      let key = Printf.sprintf "baseline-%b-%d" shifted trial in
      let offset = if shifted then Rng.int rng m else 0 in
      let mope =
        Mope.create_with_offset ~key ~domain:m ~range:(Ope.recommended_range m)
          ~offset ()
      in
      let all = Array.init m Fun.id in
      Rng.shuffle rng all;
      let db = Array.sub all 0 n in
      let cdb = Array.map (Mope.encrypt mope) db in
      let sorted = Array.copy cdb in
      Array.sort Int.compare sorted;
      (* Location challenge. *)
      let target = db.(Rng.int rng n) in
      let ct = Mope.encrypt mope target in
      let m_hat = rank_estimate ~m ~sorted ~n ct in
      let x = Modular.sub ~m m_hat (w / 2) in
      if Modular.mem ~m ~lo:x ~hi:(Modular.add ~m x w) target then incr loc_wins;
      (* Distance challenge. *)
      let i1 = Rng.int rng n in
      let i2 = (i1 + 1 + Rng.int rng (n - 1)) mod n in
      let c1 = Mope.encrypt mope db.(i1) and c2 = Mope.encrypt mope db.(i2) in
      let d_hat =
        int_of_float
          (Float.round
             (float_of_int (abs (c1 - c2))
             /. float_of_int (Mope.range mope)
             *. float_of_int m))
      in
      let x = Int.max 0 (d_hat - (w / 2)) in
      let true_d = abs (db.(i1) - db.(i2)) in
      if true_d >= x && true_d <= x + w then incr dist_wins
    done;
    ( float_of_int !loc_wins /. float_of_int trials,
      float_of_int !dist_wins /. float_of_int trials )
  in
  let ope_loc, ope_dist = run_scheme ~shifted:false in
  let mope_loc, mope_dist = run_scheme ~shifted:true in
  [ { scheme = "OPE"; location = ope_loc; distance = ope_dist };
    { scheme = "MOPE"; location = mope_loc; distance = mope_dist } ]

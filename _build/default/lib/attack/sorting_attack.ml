open Mope_stats
open Mope_ope

let attack ~m ~ciphertexts =
  let distinct = List.sort_uniq Int.compare ciphertexts in
  List.mapi (fun i c -> (c, i mod m)) distinct

type outcome = {
  ope_recovery : float;
  mope_recovery : float;
}

let recovery ~decrypt ~m guesses =
  let correct =
    List.fold_left
      (fun acc (c, guess) -> if decrypt c = guess then acc + 1 else acc)
      0 guesses
  in
  float_of_int correct /. float_of_int m

let experiment ~m ~trials ~seed =
  let rng = Rng.create seed in
  let dense = List.init m Fun.id in
  let ope_total = ref 0.0 and mope_total = ref 0.0 in
  for trial = 1 to trials do
    let key = Printf.sprintf "sorting-%d-%Ld" trial seed in
    (* Plain OPE = MOPE with offset 0; MOPE draws a random secret offset. *)
    let ope =
      Mope.create_with_offset ~key ~domain:m ~range:(Ope.recommended_range m)
        ~offset:0 ()
    in
    let mope =
      Mope.create_with_offset ~key:(key ^ "-m") ~domain:m
        ~range:(Ope.recommended_range m) ~offset:(Rng.int rng m) ()
    in
    let run scheme decrypt =
      let ciphertexts = List.map (Mope.encrypt scheme) dense in
      recovery ~decrypt ~m (attack ~m ~ciphertexts)
    in
    ope_total := !ope_total +. run ope (Mope.decrypt ope);
    mope_total := !mope_total +. run mope (Mope.decrypt mope)
  done;
  { ope_recovery = !ope_total /. float_of_int trials;
    mope_recovery = !mope_total /. float_of_int trials }

(** Recovery of the secret offset's low-order information under QueryP
    (paper §3.2 discussion and Theorem 5).

    The perceived start distribution under QueryP is a ρ-periodic target
    shifted by the secret offset j, so a maximum-likelihood adversary who
    knows the client distribution can recover [j mod ρ] — but nothing more:
    all M/ρ offsets within the congruence class induce identical perceived
    distributions. The two success rates below demonstrate both halves. *)

type outcome = {
  class_success : float;  (** Pr\[ ĵ ≡ j (mod ρ) \] — approaches 1 with samples *)
  full_success : float;   (** Pr\[ ĵ = j \] — stays ≈ ρ/M *)
}

val run :
  m:int -> k:int -> rho:int -> n_queries:int -> trials:int -> seed:int64 ->
  q:Mope_stats.Histogram.t ->
  outcome
(** Each trial draws a fresh offset, routes [n_queries] client queries
    (starts ~ [q]) through QueryP\[ρ\], hands the adversary the {e shifted
    plaintext starts} (the strongest, OPE-inverting adversary), and lets it
    pick the maximum-likelihood shift. [rho] must divide [m]. *)

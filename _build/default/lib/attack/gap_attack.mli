(** The gap attack on naive MOPE range queries (paper §1, §3, Fig. 1).

    Valid (non-wrapping) client queries never start inside the shifted arc
    just below the secret offset, so the ciphertexts of observed query
    starts leave a persistent empty arc in the ciphertext space. The
    adversary finds the largest empty arc and bets that the ciphertext
    immediately after it encrypts plaintext 0 — which pins down the offset.

    Mixing in fake queries (QueryU) makes the perceived start distribution
    uniform over the whole space, erasing the arc. *)

type guess = {
  arc_lo : int;       (** first ciphertext of the largest empty arc *)
  arc_len : int;      (** its length (circular, in ciphertext units) *)
  next_start : int;   (** first {e observed} start after the arc — the bet *)
}

val largest_empty_arc : n:int -> int list -> guess
(** Largest circular arc of [\[0, n)] containing none of the observed
    points. Raises [Invalid_argument] on an empty observation list. *)

val observed_starts : Mope_core.Make_queries.encrypted_query list -> int list
(** The query-start ciphertexts the server sees. *)

val run :
  mope:Mope_ope.Mope.t ->
  stream:Mope_core.Make_queries.encrypted_query list ->
  guess * bool
(** Mount the attack on an observed stream; the boolean reports whether the
    bet is correct ([next_start] really encrypts plaintext 0 — evaluated
    with the secret key, which only the experiment harness holds). *)

val success_rate :
  m:int -> k:int -> n_queries:int -> trials:int -> seed:int64 ->
  fake_mix:Mope_core.Scheduler.t option ->
  float
(** Fraction of [trials] (fresh key and offset each) in which the attack
    pins the offset exactly. [fake_mix = None] mounts it on naive query
    streams; [Some scheduler] routes the same client queries through the
    scheduler first. Client queries are drawn uniformly from the valid
    (non-wrapping) length-[k] queries, as in Fig. 1. *)

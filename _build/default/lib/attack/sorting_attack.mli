(** The sorting attack on dense OPE columns (paper §1).

    "A database table contains a column that takes consecutive values, e.g. a
    date. In this case, the plaintexts might cover the complete domain and if
    their order is revealed, so are their values" — the paper notes this holds
    for TPC-H attributes. When every domain value occurs, sorting the distinct
    ciphertexts aligns them one-to-one with the sorted domain: plain OPE gives
    the adversary a complete decryption with no key material. MOPE's secret
    rotation leaves M equally likely alignments, so the same attack recovers a
    value only by luck (1/M) — this is precisely the location protection the
    paper's query algorithms then fight to preserve. *)

val attack : m:int -> ciphertexts:int list -> (int * int) list
(** [attack ~m ~ciphertexts] assumes the column is dense over [\[0, m)]:
    sorts the distinct ciphertexts and pairs the i-th smallest with plaintext
    [i]. Returns [(ciphertext, guessed_plaintext)] pairs. Works on any
    ciphertext multiset; the guess quality depends on actual density. *)

type outcome = {
  ope_recovery : float;   (** fraction of values recovered against plain OPE *)
  mope_recovery : float;  (** same attack against MOPE *)
}

val experiment : m:int -> trials:int -> seed:int64 -> outcome
(** Encrypt the full dense column [0..m-1] under fresh keys; measure the
    fraction of correctly recovered plaintexts per scheme. Expected:
    [ope_recovery = 1.0], [mope_recovery ≈ 1/m] (the alignment is correct
    only when the random offset happens to be 0). *)

open Mope_stats
open Mope_ope
open Mope_core

type guess = {
  arc_lo : int;
  arc_len : int;
  next_start : int;
}

let largest_empty_arc ~n points =
  if points = [] then invalid_arg "Gap_attack.largest_empty_arc: no observations";
  let sorted = List.sort_uniq Int.compare points in
  let arr = Array.of_list sorted in
  let count = Array.length arr in
  (* Circular gaps between consecutive observed points. *)
  let best = ref (arr.(0) + 1, 0, arr.(0)) in
  for i = 0 to count - 1 do
    let here = arr.(i) in
    let next = if i = count - 1 then arr.(0) + n else arr.(i + 1) in
    let gap = next - here - 1 in
    let _, best_gap, _ = !best in
    if gap > best_gap then best := ((here + 1) mod n, gap, next mod n)
  done;
  let arc_lo, arc_len, next_start = !best in
  { arc_lo; arc_len; next_start }

let observed_starts stream =
  List.map (fun q -> q.Make_queries.c_lo) stream

let run ~mope ~stream =
  let guess = largest_empty_arc ~n:(Mope.range mope) (observed_starts stream) in
  let success = guess.next_start = Mope.encrypt mope 0 in
  (guess, success)

let success_rate ~m ~k ~n_queries ~trials ~seed ~fake_mix =
  if k > m then invalid_arg "Gap_attack.success_rate: k > m";
  let rng = Rng.create seed in
  let wins = ref 0 in
  for trial = 1 to trials do
    let key = Printf.sprintf "gap-trial-%d-%Ld" trial seed in
    let mope =
      Mope.create_with_offset ~key ~domain:m ~range:(Ope.recommended_range m)
        ~offset:(Rng.int rng m) ()
    in
    (* Valid non-wrapping length-k client queries start in [0, m-k]. *)
    let queries =
      List.init n_queries (fun _ ->
          let lo = Rng.int rng (m - k + 1) in
          Query_model.make ~m ~lo ~hi:(lo + k - 1))
    in
    let stream =
      match fake_mix with
      | None -> Make_queries.run_naive ~mope ~k ~queries
      | Some scheduler -> Make_queries.run ~mope ~scheduler ~rng ~queries
    in
    let _, success = run ~mope ~stream:(Make_queries.strip stream) in
    if success then incr wins
  done;
  float_of_int !wins /. float_of_int trials

open Mope_stats
open Mope_ope
open Mope_core

type mode = Naive | Mixed of Scheduler.mode

type config = {
  m : int;
  n : int;
  w : int;
  q : int;
  k : int;
  trials : int;
  seed : int64;
}

let default = { m = 1000; n = 60; w = 20; q = 50; k = 10; trials = 300; seed = 2025L }

(* A smooth, clearly non-uniform client start distribution over the valid
   (non-wrapping) starts [0, m-k]: a Gaussian bump over a small background.
   Smoothness matters: the ML location adversary below exploits the bump's
   position, which is how naive MOPE actually leaks in practice. *)
let client_distribution ~m ~k =
  let valid = m - k + 1 in
  let centre = 0.3 *. float_of_int valid in
  let sigma = 0.12 *. float_of_int valid in
  let pmf =
    Array.init m (fun i ->
        if i >= valid then 0.0
        else begin
          let z = (float_of_int i -. centre) /. sigma in
          0.2 +. exp (-0.5 *. z *. z)
        end)
  in
  let total = Array.fold_left ( +. ) 0.0 pmf in
  Histogram.of_pmf (Array.map (fun p -> p /. total) pmf)

(* Sample n distinct plaintexts from [0, m). *)
let sample_database rng ~m ~n =
  let all = Array.init m Fun.id in
  Rng.shuffle rng all;
  Array.sub all 0 n

let make_scheduler ~m ~k smode =
  Scheduler.create ~m ~k ~mode:smode ~q:(client_distribution ~m ~k)

let observed_stream rng ~mope ~m ~k ~q mode =
  let dist = client_distribution ~m ~k in
  let queries =
    List.init q (fun _ ->
        let lo = Histogram.sample dist ~u:(Rng.float rng) in
        Query_model.make ~m ~lo ~hi:(lo + k - 1))
  in
  let labelled =
    match mode with
    | Naive -> Make_queries.run_naive ~mope ~k ~queries
    | Mixed smode ->
      Make_queries.run ~mope ~scheduler:(make_scheduler ~m ~k smode) ~rng ~queries
  in
  Make_queries.strip labelled

(* Offset estimate from the query stream: map each observed start ciphertext
   to an approximate shifted plaintext via its rank among the database
   ciphertexts, then pick the shift maximizing the (kernel-smoothed)
   likelihood under the known client distribution. Against naive MOPE the
   bump in the client distribution pins the shift; under QueryU the
   perceived distribution is uniform and the likelihood carries nothing. *)
let estimate_offset ~m ~k stream ~ciphertext_rank =
  let q = client_distribution ~m ~k in
  (* Kernel-smooth Q to tolerate the rank-inversion noise (~ m/n). *)
  let width = Int.max 1 (m / 40) in
  let smooth =
    Array.init m (fun i ->
        let acc = ref 0.0 in
        for d = -width to width do
          acc := !acc +. Histogram.prob q (((i + d) mod m + m) mod m)
        done;
        !acc /. float_of_int ((2 * width) + 1))
  in
  let shifted_estimates =
    List.map
      (fun start ->
        let rank, total = ciphertext_rank start in
        int_of_float
          (Float.round (float_of_int rank /. float_of_int total *. float_of_int m))
        mod m)
      (Gap_attack.observed_starts stream)
  in
  let counts = Array.make m 0 in
  List.iter (fun x -> counts.(x) <- counts.(x) + 1) shifted_estimates;
  let best_j = ref 0 and best_ll = ref neg_infinity in
  for j = 0 to m - 1 do
    let ll = ref 0.0 in
    for x = 0 to m - 1 do
      if counts.(x) > 0 then
        ll :=
          !ll
          +. float_of_int counts.(x)
             *. log (Float.max smooth.(((x - j) mod m + m) mod m) 1e-12)
    done;
    if !ll > !best_ll then begin
      best_ll := !ll;
      best_j := j
    end
  done;
  !best_j

let location_success config mode =
  let { m; n; w; q; k; trials; seed } = config in
  let rng = Rng.create seed in
  let wins = ref 0 in
  for trial = 1 to trials do
    let key = Printf.sprintf "wow-l-%d" trial in
    let mope =
      Mope.create_with_offset ~key ~domain:m ~range:(Ope.recommended_range m)
        ~offset:(Rng.int rng m) ()
    in
    let db = sample_database rng ~m ~n in
    let cdb = Array.map (Mope.encrypt mope) db in
    let sorted = Array.copy cdb in
    Array.sort Int.compare sorted;
    let challenge = db.(Rng.int rng n) in
    let c = Mope.encrypt mope challenge in
    let stream = observed_stream rng ~mope ~m ~k ~q mode in
    (* Adversary: offset estimate + rank inversion of the challenge. *)
    let rank_of ct =
      let below = Array.fold_left (fun acc x -> if x <= ct then acc + 1 else acc) 0 sorted in
      (below, n + 1)
    in
    let j_hat = estimate_offset ~m ~k stream ~ciphertext_rank:rank_of in
    let rank, total = rank_of c in
    let shifted_hat =
      int_of_float
        (Float.round (float_of_int rank /. float_of_int total *. float_of_int m))
    in
    let m_hat = Modular.sub ~m shifted_hat j_hat in
    let x = Modular.sub ~m m_hat (w / 2) in
    if Modular.mem ~m ~lo:x ~hi:(Modular.add ~m x w) challenge then incr wins
  done;
  float_of_int !wins /. float_of_int trials

let distance_success config mode =
  let { m; n; w; q; k; trials; seed } = config in
  let rng = Rng.create (Int64.add seed 1L) in
  let wins = ref 0 in
  for trial = 1 to trials do
    let key = Printf.sprintf "wow-d-%d" trial in
    let mope =
      Mope.create_with_offset ~key ~domain:m ~range:(Ope.recommended_range m)
        ~offset:(Rng.int rng m) ()
    in
    let db = sample_database rng ~m ~n in
    let i1 = Rng.int rng n in
    let i2 = (i1 + 1 + Rng.int rng (n - 1)) mod n in
    let m1 = db.(i1) and m2 = db.(i2) in
    let c1 = Mope.encrypt mope m1 and c2 = Mope.encrypt mope m2 in
    (* The stream is observed but the distance adversary needs only the
       ciphertext scale; still generate it so q enters the experiment. *)
    let _ = observed_stream rng ~mope ~m ~k ~q mode in
    let d_hat =
      Float.round
        (float_of_int (abs (c1 - c2))
        /. float_of_int (Mope.range mope)
        *. float_of_int m)
    in
    let x = Int.max 0 (int_of_float d_hat - (w / 2)) in
    let true_distance = abs (m1 - m2) in
    if true_distance >= x && true_distance <= x + w then incr wins
  done;
  float_of_int !wins /. float_of_int trials

let location_bound config mode =
  let { m; w; _ } = config in
  match mode with
  | Naive -> 1.0
  | Mixed Scheduler.Uniform -> float_of_int w /. float_of_int m
  | Mixed (Scheduler.Periodic rho) ->
    Float.min 1.0 (float_of_int (rho * w) /. float_of_int m)

let distance_bound config =
  let { m; w; q; k; _ } = config in
  let denom = m - (q * k) - 1 in
  if denom <= 0 then 1.0
  else Float.min 1.0 (8.0 *. float_of_int w /. sqrt (float_of_int denom))

let random_guess config = float_of_int (config.w + 1) /. float_of_int config.m

(** Periodic re-encryption of the outsourced data (paper §9).

    MOPE's advantage over basic OPE holds only under ciphertext-only
    attacks: a leaked plaintext–ciphertext pair re-orients the space. The
    paper suggests "re-encrypting portions of the data at regular
    intervals" as a mitigation; this module implements it. The trusted
    proxy streams each encrypted table, decrypts rows under the old key and
    re-encrypts them under a fresh one (new OPE function {e and} new secret
    offset), producing a replacement server database. Any previously
    exposed pair is useless against the rotated ciphertexts. *)

type report = {
  tables : int;
  rows : int;           (** rows re-encrypted *)
  old_offset : int;
  new_offset : int;
}

val rotate : enc:Encrypted_db.t -> new_key:string -> Encrypted_db.t * report
(** Build the re-encrypted twin under [new_key] (same window, domain and
    column specs; indexes rebuilt). The old handle stays valid so the proxy
    can cut over atomically. Distinctness of the freshly derived offset is
    probabilistic (1 − 1/M for a random key), as in the paper. *)

val offsets_differ : Encrypted_db.t -> Encrypted_db.t -> bool
(** Whether two handles use different secret offsets (what rotation is
    meant to refresh; true with probability 1 − 1/M for random keys). *)

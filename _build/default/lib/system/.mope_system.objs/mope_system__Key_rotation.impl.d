lib/system/key_rotation.ml: Database Encrypted_db List Mope Mope_db Mope_ope Table

lib/system/encrypted_db.ml: Array Database Date Feistel Hashtbl Hmac List Mope Mope_crypto Mope_db Mope_ope Ope Printf Schema Table Value

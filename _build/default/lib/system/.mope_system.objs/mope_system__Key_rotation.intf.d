lib/system/key_rotation.mli: Encrypted_db

lib/system/testbed.ml: Database Encrypted_db List Mope_core Mope_db Mope_workload Proxy Scheduler Tpch Tpch_queries

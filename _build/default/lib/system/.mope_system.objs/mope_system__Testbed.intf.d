lib/system/testbed.mli: Encrypted_db Mope_db Mope_workload Proxy Tpch Tpch_queries

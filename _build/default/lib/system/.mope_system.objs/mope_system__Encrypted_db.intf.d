lib/system/encrypted_db.mli: Mope_db Mope_ope

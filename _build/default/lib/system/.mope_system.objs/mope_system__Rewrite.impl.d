lib/system/rewrite.ml: List Mope_db Sql_ast Value

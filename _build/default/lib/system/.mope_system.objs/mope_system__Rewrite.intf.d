lib/system/rewrite.mli: Mope_db Sql_ast

lib/system/proxy.mli: Date Encrypted_db Exec Mope_core Mope_db

open Mope_ope
open Mope_db

type report = {
  tables : int;
  rows : int;
  old_offset : int;
  new_offset : int;
}

let rotate ~enc ~new_key =
  (* The proxy decrypts every row under the old key into a transient
     plaintext staging database, then encrypts it under the fresh key. The
     staging copy lives only inside the trusted proxy, exactly like the
     original data-owner upload (paper Fig. 4). *)
  let staging = Database.create () in
  let rows = ref 0 in
  List.iter
    (fun spec ->
      let table = spec.Encrypted_db.table in
      let source = Database.table_exn (Encrypted_db.server enc) table in
      let dest =
        Database.create_table staging ~name:table
          ~schema:(Encrypted_db.plain_schema enc table)
      in
      Table.iter source (fun _ row ->
          incr rows;
          ignore (Table.insert dest (Encrypted_db.decrypt_row enc ~table row))))
    (Encrypted_db.specs enc);
  let rotated =
    Encrypted_db.create ~key:new_key ~window_lo:(Encrypted_db.window_lo enc)
      ~date_domain:(Encrypted_db.date_domain enc) ~plain:staging
      ~specs:(Encrypted_db.specs enc) ()
  in
  ( rotated,
    { tables = List.length (Encrypted_db.specs enc);
      rows = !rows;
      old_offset = Mope.offset (Encrypted_db.mope enc);
      new_offset = Mope.offset (Encrypted_db.mope rotated) } )

let offsets_differ a b =
  Mope.offset (Encrypted_db.mope a) <> Mope.offset (Encrypted_db.mope b)

type key = string

let rounds = 10

(* Round function: the low 32 bits of HMAC(key, round || half). *)
let round_fn ~key r half =
  let msg = Printf.sprintf "feistel:%d:%08Lx" r half in
  let tag = Hmac.mac ~key msg in
  let word = ref 0L in
  for i = 0 to 3 do
    word := Int64.logor (Int64.shift_left !word 8) (Int64.of_int (Char.code tag.[i]))
  done;
  !word

let mask32 = 0xFFFFFFFFL

let split x =
  (Int64.shift_right_logical x 32, Int64.logand x mask32)

let join left right =
  Int64.logor (Int64.shift_left left 32) (Int64.logand right mask32)

let permute ~key x =
  let left = ref (fst (split x)) and right = ref (snd (split x)) in
  for r = 0 to rounds - 1 do
    let f = round_fn ~key r !right in
    let new_right = Int64.logand (Int64.logxor !left f) mask32 in
    left := !right;
    right := new_right
  done;
  join !left !right

let unpermute ~key x =
  let left = ref (fst (split x)) and right = ref (snd (split x)) in
  for r = rounds - 1 downto 0 do
    let f = round_fn ~key r !left in
    let new_left = Int64.logand (Int64.logxor !right f) mask32 in
    right := !left;
    left := new_left
  done;
  join !left !right

(* Width (in bits) of the smallest even-width block covering [domain]:
   cycle walking then revisits the domain within an expected < 4 steps. *)
let block_bits domain =
  let rec go b = if b >= 62 || 1 lsl b >= domain then b else go (b + 1) in
  let b = go 2 in
  if b land 1 = 1 then b + 1 else b

(* One direction of a small balanced Feistel over [half] bits per side. *)
let small_round ~key ~half r side =
  let msg = Printf.sprintf "fpe:%d:%d:%x" half r side in
  let tag = Hmac.mac ~key msg in
  let word = ref 0 in
  for i = 0 to 3 do
    word := (!word lsl 8) lor Char.code tag.[i]
  done;
  !word land ((1 lsl half) - 1)

let small_permute ~key ~bits x =
  let half = bits / 2 in
  let mask = (1 lsl half) - 1 in
  let left = ref (x lsr half) and right = ref (x land mask) in
  for r = 0 to rounds - 1 do
    let f = small_round ~key ~half r !right in
    let new_right = (!left lxor f) land mask in
    left := !right;
    right := new_right
  done;
  (!left lsl half) lor !right

let small_unpermute ~key ~bits x =
  let half = bits / 2 in
  let mask = (1 lsl half) - 1 in
  let left = ref (x lsr half) and right = ref (x land mask) in
  for r = rounds - 1 downto 0 do
    let f = small_round ~key ~half r !left in
    let new_left = (!right lxor f) land mask in
    right := !left;
    left := new_left
  done;
  (!left lsl half) lor !right

let fpe_encrypt ~key ~domain x =
  if domain <= 0 then invalid_arg "Feistel.fpe_encrypt: domain";
  if x < 0 || x >= domain then invalid_arg "Feistel.fpe_encrypt: out of domain";
  let bits = block_bits domain in
  let rec walk v =
    let v' = small_permute ~key ~bits v in
    if v' < domain then v' else walk v'
  in
  walk x

let fpe_decrypt ~key ~domain x =
  if domain <= 0 then invalid_arg "Feistel.fpe_decrypt: domain";
  if x < 0 || x >= domain then invalid_arg "Feistel.fpe_decrypt: out of domain";
  let bits = block_bits domain in
  let rec walk v =
    let v' = small_unpermute ~key ~bits v in
    if v' < domain then v' else walk v'
  in
  walk x

let keystream ~key ~nonce len =
  let out = Buffer.create len in
  let counter = ref 0 in
  while Buffer.length out < len do
    let block = Hmac.mac ~key (Printf.sprintf "rnd:%s:%d" nonce !counter) in
    Buffer.add_string out block;
    incr counter
  done;
  Buffer.sub out 0 len

let rnd_encrypt ~key ~nonce plaintext =
  let ks = keystream ~key ~nonce (String.length plaintext) in
  String.mapi (fun i c -> Char.chr (Char.code c lxor Char.code ks.[i])) plaintext

let rnd_decrypt = rnd_encrypt

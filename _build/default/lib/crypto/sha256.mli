(** SHA-256 (FIPS 180-4), implemented from scratch.

    This is the only hash used in the repository: it seeds the deterministic
    coin streams that drive the lazily-sampled OPE scheme (see {!Drbg}) and
    the round function of the Feistel PRP (see {!Feistel}). *)

type ctx
(** Incremental hashing context. *)

val init : unit -> ctx
(** Fresh context. *)

val feed : ctx -> string -> unit
(** [feed ctx s] absorbs the bytes of [s]. *)

val feed_bytes : ctx -> bytes -> pos:int -> len:int -> unit
(** Absorb a slice of a byte buffer. *)

val finalize : ctx -> string
(** Produce the 32-byte digest. The context must not be reused. *)

val digest : string -> string
(** One-shot hash of a string; returns the 32-byte raw digest. *)

val hex : string -> string
(** Lowercase hexadecimal rendering of a raw digest (or any string). *)

val digest_hex : string -> string
(** [digest_hex s = hex (digest s)]. *)

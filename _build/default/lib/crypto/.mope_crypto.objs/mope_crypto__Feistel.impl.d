lib/crypto/feistel.ml: Buffer Char Hmac Int64 Printf String

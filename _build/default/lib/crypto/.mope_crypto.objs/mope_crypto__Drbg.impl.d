lib/crypto/drbg.ml: Buffer Char Hmac Int64 List Printf String

lib/crypto/feistel.mli:

lib/crypto/hmac.mli:

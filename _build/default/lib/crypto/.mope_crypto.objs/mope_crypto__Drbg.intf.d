lib/crypto/drbg.mli:

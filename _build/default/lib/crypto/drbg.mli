(** Deterministic random bit generator (HMAC-DRBG, NIST SP 800-90A style).

    The OPE scheme of Boldyreva et al. samples a random order-preserving
    function {e lazily}: each encryption walks a binary search tree over the
    ciphertext range and must re-derive exactly the same "random" choices at
    every node it revisits, across calls. We realise those choices as an
    HMAC-DRBG instantiated from the secret key and an unambiguous encoding of
    the tree node; the stream is a pure function of [(key, context)]. *)

type t
(** A deterministic byte-stream generator. Mutable: draws advance the state. *)

val create : key:string -> context:string -> t
(** [create ~key ~context] instantiates the generator. Equal [key]/[context]
    pairs always produce identical streams. *)

val derive : key:string -> parts:string list -> t
(** [derive ~key ~parts] builds the context from length-prefixed [parts], so
    that distinct part lists can never collide (["ab";"c"] vs ["a";"bc"]). *)

val bytes : t -> int -> string
(** Draw [n] pseudo-random bytes. *)

val bits : t -> int -> int
(** [bits t n] draws [n] pseudo-random bits as a non-negative [int];
    [0 <= n <= 62]. *)

val uniform : t -> int -> int
(** [uniform t n] draws a uniform integer in [\[0, n)] without modulo bias
    (rejection sampling). [n] must be positive. *)

val uniform64 : t -> int64 -> int64
(** Uniform draw in [\[0, n)] for 64-bit bounds; [n > 0]. *)

val float53 : t -> float
(** A uniform float in [\[0, 1)] with 53 bits of precision. *)

(** HMAC-SHA256 (RFC 2104 / FIPS 198-1). *)

val mac : key:string -> string -> string
(** [mac ~key msg] is the 32-byte HMAC-SHA256 tag of [msg] under [key].
    Keys of any length are accepted (hashed down when longer than the
    64-byte block size, zero-padded when shorter). *)

val mac_hex : key:string -> string -> string
(** Hexadecimal rendering of {!mac}. *)

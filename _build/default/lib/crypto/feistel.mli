(** A balanced Feistel pseudo-random permutation over 64-bit blocks, with a
    format-preserving variant over arbitrary integer domains (cycle walking).

    The system prototype encrypts non-range-queried columns the way
    CryptDB-style deployments do: deterministically (DET) when equality
    predicates are needed, randomized (RND) otherwise. Both modes are built
    here from the HMAC round function. *)

type key = string

val permute : key:key -> int64 -> int64
(** [permute ~key x] applies a 10-round balanced Feistel network to the
    64-bit block [x]. A bijection on the whole [int64] range. *)

val unpermute : key:key -> int64 -> int64
(** Inverse of {!permute} under the same key. *)

val fpe_encrypt : key:key -> domain:int -> int -> int
(** [fpe_encrypt ~key ~domain x] is a pseudo-random permutation of
    [\[0, domain)], obtained from {!permute} by cycle walking.
    Requires [0 <= x < domain]. Deterministic: suitable for DET columns. *)

val fpe_decrypt : key:key -> domain:int -> int -> int
(** Inverse of {!fpe_encrypt}. *)

val rnd_encrypt : key:key -> nonce:string -> string -> string
(** Randomized (per-nonce) string encryption: an HMAC-keystream XOR with the
    nonce prepended conceptually by the caller. Same [key]/[nonce]/plaintext
    round-trips through {!rnd_decrypt}. *)

val rnd_decrypt : key:key -> nonce:string -> string -> string
(** Inverse of {!rnd_encrypt} (XOR keystream is an involution). *)

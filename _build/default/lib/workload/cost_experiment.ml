open Mope_stats
open Mope_core

type config = {
  k : int;
  sigma : float;
  mode : Scheduler.mode;
  n_queries : int;
  n_records : int;
  q_samples : int;
  seed : int64;
}

let default =
  { k = 10; sigma = 10.0; mode = Scheduler.Uniform; n_queries = 2000;
    n_records = 100_000; q_samples = 200_000; seed = 42L }

type outcome = {
  tally : Cost.t;
  bandwidth : float;
  requests : float;
  alpha : float;
  expected_fakes : float;
}

(* Per-value record counts of the synthetic table, plus prefix sums so that
   |q| for any (wrapping) interval is O(1). *)
let build_records rng data n_records =
  let m = Histogram.size data in
  let counts = Array.make m 0 in
  for _ = 1 to n_records do
    let v = Histogram.sample data ~u:(Rng.float rng) in
    counts.(v) <- counts.(v) + 1
  done;
  let prefix = Array.make (m + 1) 0 in
  for i = 0 to m - 1 do
    prefix.(i + 1) <- prefix.(i) + counts.(i)
  done;
  prefix

let records_in prefix ~m ~lo ~hi =
  let seg (a, b) = prefix.(b + 1) - prefix.(a) in
  Mope_ope.Modular.segments ~m ~lo ~hi |> List.fold_left (fun acc s -> acc + seg s) 0

let run ~data config =
  let data =
    match config.mode with
    | Scheduler.Periodic rho -> Datasets.pad_to_multiple data ~rho
    | Scheduler.Uniform -> data
  in
  let m = data.Datasets.domain in
  let k = Int.min config.k m in
  let dist = data.Datasets.distribution in
  let rng = Rng.create config.seed in
  let records = build_records (Rng.split rng) dist config.n_records in
  let q =
    Query_gen.start_distribution (Rng.split rng) ~data:dist ~sigma:config.sigma ~k
      ~samples:config.q_samples
  in
  let scheduler = Scheduler.create ~m ~k ~mode:config.mode ~q in
  let tally = Cost.create () in
  let query_rng = Rng.split rng and sched_rng = Rng.split rng in
  for _ = 1 to config.n_queries do
    let query = Query_gen.sample_query query_rng ~data:dist ~sigma:config.sigma in
    let pieces = Query_model.transform ~m ~k query in
    let n_pieces = List.length pieces in
    tally.Cost.real_queries <- tally.Cost.real_queries + 1;
    tally.Cost.transformed_queries <- tally.Cost.transformed_queries + n_pieces;
    let query_records =
      records_in records ~m ~lo:query.Query_model.lo ~hi:query.Query_model.hi
    in
    tally.Cost.real_records <- tally.Cost.real_records + query_records;
    (* Records fetched by the transformed pieces beyond the query itself:
       the union of the pieces covers [lo, lo + n_pieces*k - 1]. *)
    let covered_len = Int.min m (n_pieces * k) in
    let covered_hi = Mope_ope.Modular.add ~m query.Query_model.lo (covered_len - 1) in
    let covered_records =
      records_in records ~m ~lo:query.Query_model.lo ~hi:covered_hi
    in
    tally.Cost.excess_records <- tally.Cost.excess_records + (covered_records - query_records);
    (* Fake queries per piece. *)
    List.iter
      (fun piece_start ->
        let burst = Scheduler.schedule scheduler sched_rng ~real:piece_start in
        let fakes = List.length burst - 1 in
        tally.Cost.fake_queries <- tally.Cost.fake_queries + fakes;
        List.iteri
          (fun i start ->
            if i < fakes then begin
              let piece = Query_model.coverage ~m ~k start in
              tally.Cost.fake_records <-
                tally.Cost.fake_records
                + records_in records ~m ~lo:piece.Query_model.lo ~hi:piece.Query_model.hi
            end)
          burst)
      pieces
  done;
  { tally;
    bandwidth = Cost.bandwidth tally;
    requests = Cost.requests tally;
    alpha = Scheduler.alpha scheduler;
    expected_fakes = Scheduler.expected_fakes_per_real scheduler }

open Mope_stats
open Mope_db

type template = Q4 | Q6 | Q14

type instance = {
  template : template;
  date_lo : Date.t;
  date_hi : Date.t;
  sql : string;
}

let template_name = function Q4 -> "Q4" | Q6 -> "Q6" | Q14 -> "Q14"

let date_column = function Q4 -> "o_orderdate" | Q6 | Q14 -> "l_shipdate"

let fixed_length = function Q6 -> 366 | Q14 -> 31 | Q4 -> 92

let start_domain template =
  let starts =
    match template with
    | Q6 -> List.init 5 (fun i -> Date.of_ymd (1993 + i) 1 1)
    | Q14 ->
      List.concat_map
        (fun y -> List.init 12 (fun m -> Date.of_ymd (1993 + y) (m + 1) 1))
        (List.init 5 Fun.id)
    | Q4 ->
      List.concat_map
        (fun y -> List.init 4 (fun q -> Date.of_ymd (1993 + y) ((3 * q) + 1) 1))
        (List.init 5 Fun.id)
  in
  List.map Tpch.day_to_plain starts

let start_distribution ?(domain = Tpch.date_domain) template =
  if domain < Tpch.date_domain then
    invalid_arg "Tpch_queries.start_distribution: domain too small";
  let counts = Array.make domain 0 in
  List.iter (fun s -> counts.(s) <- counts.(s) + 1) (start_domain template);
  Histogram.of_counts counts

let q6_sql ~d1 ~d2 ~discount ~quantity =
  Printf.sprintf
    "SELECT sum(l_extendedprice * l_discount) AS revenue FROM lineitem WHERE \
     l_shipdate >= DATE '%s' AND l_shipdate <= DATE '%s' AND l_discount \
     BETWEEN %.2f AND %.2f AND l_quantity < %d"
    (Date.to_string d1) (Date.to_string d2) (discount -. 0.01) (discount +. 0.01)
    quantity

let q14_sql ~d1 ~d2 =
  Printf.sprintf
    "SELECT 100.0 * sum(CASE WHEN p_type LIKE 'PROMO%%' THEN l_extendedprice * \
     (1 - l_discount) ELSE 0.0 END) / sum(l_extendedprice * (1 - l_discount)) \
     AS promo_revenue FROM lineitem, part WHERE l_partkey = p_partkey AND \
     l_shipdate >= DATE '%s' AND l_shipdate <= DATE '%s'"
    (Date.to_string d1) (Date.to_string d2)

let q4_sql ~d1 ~d2 =
  Printf.sprintf
    "SELECT o_orderpriority, count(*) AS order_count FROM orders WHERE \
     o_orderdate >= DATE '%s' AND o_orderdate <= DATE '%s' AND o_orderkey IN \
     (SELECT l_orderkey FROM lineitem WHERE l_commitdate < l_receiptdate) \
     GROUP BY o_orderpriority ORDER BY o_orderpriority"
    (Date.to_string d1) (Date.to_string d2)

let random_instance rng template =
  match template with
  | Q6 ->
    let year = 1993 + Rng.int rng 5 in
    let d1 = Date.of_ymd year 1 1 in
    let d2 = Date.add_years d1 1 - 1 in
    let discount = 0.02 +. (float_of_int (Rng.int rng 8) /. 100.0) in
    let quantity = 24 + Rng.int rng 2 in
    { template; date_lo = d1; date_hi = d2; sql = q6_sql ~d1 ~d2 ~discount ~quantity }
  | Q14 ->
    let year = 1993 + Rng.int rng 5 and month = 1 + Rng.int rng 12 in
    let d1 = Date.of_ymd year month 1 in
    let d2 = Date.add_months d1 1 - 1 in
    { template; date_lo = d1; date_hi = d2; sql = q14_sql ~d1 ~d2 }
  | Q4 ->
    let year = 1993 + Rng.int rng 5 and quarter = Rng.int rng 4 in
    let d1 = Date.of_ymd year ((3 * quarter) + 1) 1 in
    let d2 = Date.add_months d1 3 - 1 in
    { template; date_lo = d1; date_hi = d2; sql = q4_sql ~d1 ~d2 }

(* TPC-H Q1: the pricing summary report. The paper excludes it from the
   proxy experiments (its range covers almost the whole table) but the
   template is provided for completeness and engine validation; the date
   literal is precomputed so the predicate stays sargable. *)
let q1_sql =
  let cutoff = Date.add_days (Date.of_ymd 1998 12 1) (-90) in
  Printf.sprintf
    "SELECT l_returnflag, l_linestatus, sum(l_quantity) AS sum_qty, \
     sum(l_extendedprice) AS sum_base_price, sum(l_extendedprice * (1 - \
     l_discount)) AS sum_disc_price, sum(l_extendedprice * (1 - l_discount) * \
     (1 + l_tax)) AS sum_charge, avg(l_quantity) AS avg_qty, \
     avg(l_extendedprice) AS avg_price, avg(l_discount) AS avg_disc, count(*) \
     AS count_order FROM lineitem WHERE l_shipdate <= DATE '%s' GROUP BY \
     l_returnflag, l_linestatus ORDER BY l_returnflag, l_linestatus"
    (Date.to_string cutoff)

(** TPC-H-like data generator (substrate for paper §6.3).

    Generates the LINEITEM / ORDERS / PART subset the paper's queries touch,
    with per-column distributions following the TPC-H specification closely
    enough for query selectivities to match (dates uniform over the spec
    windows, discounts 0.00–0.10, quantities 1–50, PROMO part types ≈ 1/6).
    Scale factor 1.0 corresponds to 1.5M orders / ~6M lineitems / 200k parts;
    the experiments run at a smaller SF since all reported quantities are
    ratios (see DESIGN.md). *)

val window_lo : Mope_db.Date.t
(** 1992-01-01 — first day of the MOPE plaintext window. *)

val window_hi : Mope_db.Date.t
(** 1998-12-31 — last day. *)

val date_domain : int
(** Size of the MOPE plaintext space: days in the window (2557). *)

val day_to_plain : Mope_db.Date.t -> int
(** Map a date into the MOPE plaintext space [\[0, date_domain)]. *)

val plain_to_day : int -> Mope_db.Date.t

type sizes = { orders : int; lineitems : int; parts : int }

val load : Mope_db.Database.t -> sf:float -> seed:int64 -> sizes
(** Create and populate the three tables, then build B+-tree indexes on
    [l_shipdate], [o_orderdate], [o_orderkey] and [p_partkey]. *)

val lineitem_schema : Mope_db.Schema.t
val orders_schema : Mope_db.Schema.t
val part_schema : Mope_db.Schema.t

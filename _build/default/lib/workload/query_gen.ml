open Mope_stats
open Mope_core

type config = {
  sigma : float;
  n_queries : int;
}

let sample_length rng ~sigma ~m =
  let raw = Distributions.sample_normal rng ~mean:0.0 ~sigma in
  let len = int_of_float (Float.round (Float.abs raw)) in
  Int.max 1 (Int.min m len)

let sample_query rng ~data ~sigma =
  let m = Histogram.size data in
  let position = Histogram.sample data ~u:(Rng.float rng) in
  let len = sample_length rng ~sigma ~m in
  Query_model.make ~m ~lo:position ~hi:(position + len - 1)

let generate rng ~data config =
  List.init config.n_queries (fun _ -> sample_query rng ~data ~sigma:config.sigma)

let start_distribution rng ~data ~sigma ~k ~samples =
  let m = Histogram.size data in
  let counts = Array.make m 0 in
  for _ = 1 to samples do
    let q = sample_query rng ~data ~sigma in
    List.iter
      (fun s -> counts.(s) <- counts.(s) + 1)
      (Query_model.transform ~m ~k q)
  done;
  Histogram.of_counts counts

(* pmf of the clamped length max(1, min(m, round |N(0,σ)|)). *)
let length_pmf ~sigma ~m =
  let cap = Int.min m (Int.max 1 (int_of_float (Float.ceil (6.0 *. sigma)))) in
  let phi x = Special.normal_cdf ~mean:0.0 ~sigma x in
  (* P(round |N| = l) = Φ(l+0.5) − Φ(l−0.5) counted on both tails. *)
  let raw =
    Array.init (cap + 1) (fun l ->
        if l = 0 then 0.0
        else begin
          let lf = float_of_int l in
          2.0 *. (phi (lf +. 0.5) -. phi (lf -. 0.5))
        end)
  in
  (* Mass for round = 0 folds into length 1 (the max-1 clamp); the tail
     beyond cap folds into cap (the min-m clamp, approximately). *)
  raw.(1) <- raw.(1) +. (2.0 *. (phi 0.5 -. phi 0.0));
  raw.(cap) <- raw.(cap) +. (2.0 *. (1.0 -. phi (float_of_int cap +. 0.5)));
  raw

let start_distribution_exact ~data ~sigma ~k =
  let m = Histogram.size data in
  let lengths = length_pmf ~sigma ~m in
  let weights = Array.make m 0.0 in
  for position = 0 to m - 1 do
    let pc = Histogram.prob data position in
    if pc > 0.0 then
      for len = 1 to Array.length lengths - 1 do
        let pl = lengths.(len) in
        if pl > 0.0 then begin
          let q = Query_model.make ~m ~lo:position ~hi:(position + len - 1) in
          List.iter
            (fun s -> weights.(s) <- weights.(s) +. (pc *. pl))
            (Query_model.transform ~m ~k q)
        end
      done
  done;
  let total = Array.fold_left ( +. ) 0.0 weights in
  Histogram.of_pmf (Array.map (fun w -> w /. total) weights)

(** Driver for the Bandwidth/Requests cost experiments (paper Figs. 5–12).

    Simulates the proxy pipeline without the SQL backend: a synthetic table
    of records drawn from the dataset distribution supplies per-value record
    counts, the scheduler interleaves fake queries, and the cost tallies
    count records and requests exactly as §6 defines. *)

type config = {
  k : int;                       (** fixed transformed query length *)
  sigma : float;                 (** query length scale *)
  mode : Mope_core.Scheduler.mode;
  n_queries : int;               (** real client queries to simulate *)
  n_records : int;               (** synthetic table size *)
  q_samples : int;               (** Monte-Carlo samples for estimating Q *)
  seed : int64;
}

val default : config
(** k=10, σ=10, Uniform mode, 2000 queries, 100k records, 200k samples. *)

type outcome = {
  tally : Mope_core.Cost.t;
  bandwidth : float;
  requests : float;
  alpha : float;                 (** the scheduler's coin bias *)
  expected_fakes : float;        (** (1−α)/α *)
}

val run : data:Datasets.t -> config -> outcome
(** The dataset is padded automatically when a periodic mode's ρ does not
    divide its domain. *)

open Mope_stats
open Mope_db

let window_lo = Date.of_ymd 1992 1 1
let window_hi = Date.of_ymd 1998 12 31
let date_domain = window_hi - window_lo + 1

let day_to_plain day =
  if day < window_lo || day > window_hi then
    invalid_arg "Tpch.day_to_plain: date outside the 1992-1998 window";
  day - window_lo

let plain_to_day plain =
  if plain < 0 || plain >= date_domain then invalid_arg "Tpch.plain_to_day";
  plain + window_lo

type sizes = { orders : int; lineitems : int; parts : int }

let col name ty = { Schema.name; ty }

let lineitem_schema =
  Schema.make
    [ col "l_orderkey" Value.TInt;
      col "l_partkey" Value.TInt;
      col "l_quantity" Value.TInt;
      col "l_extendedprice" Value.TFloat;
      col "l_discount" Value.TFloat;
      col "l_tax" Value.TFloat;
      col "l_shipdate" Value.TDate;
      col "l_commitdate" Value.TDate;
      col "l_receiptdate" Value.TDate;
      col "l_shipmode" Value.TStr;
      col "l_returnflag" Value.TStr;
      col "l_linestatus" Value.TStr ]

let orders_schema =
  Schema.make
    [ col "o_orderkey" Value.TInt;
      col "o_custkey" Value.TInt;
      col "o_orderdate" Value.TDate;
      col "o_orderpriority" Value.TStr;
      col "o_totalprice" Value.TFloat ]

let part_schema =
  Schema.make
    [ col "p_partkey" Value.TInt;
      col "p_type" Value.TStr;
      col "p_retailprice" Value.TFloat ]

let priorities =
  [| "1-URGENT"; "2-HIGH"; "3-MEDIUM"; "4-NOT SPECIFIED"; "5-LOW" |]

let ship_modes = [| "REG AIR"; "AIR"; "RAIL"; "SHIP"; "TRUCK"; "MAIL"; "FOB" |]

let type_syllable_1 =
  [| "STANDARD"; "SMALL"; "MEDIUM"; "LARGE"; "ECONOMY"; "PROMO" |]

let type_syllable_2 =
  [| "ANODIZED"; "BURNISHED"; "PLATED"; "POLISHED"; "BRUSHED" |]

let type_syllable_3 = [| "TIN"; "NICKEL"; "BRASS"; "STEEL"; "COPPER" |]

let pick rng arr = arr.(Rng.int rng (Array.length arr))

(* Order dates span 1992-01-01 .. 1998-08-02 per the TPC-H spec, so derived
   ship/receipt dates stay inside the window. *)
let order_date_hi = Date.of_ymd 1998 8 2

let load db ~sf ~seed =
  if sf <= 0.0 then invalid_arg "Tpch.load: sf must be positive";
  let rng = Rng.create seed in
  let n_orders = Int.max 1 (int_of_float (1_500_000.0 *. sf)) in
  let n_parts = Int.max 1 (int_of_float (200_000.0 *. sf)) in
  let part = Database.create_table db ~name:"part" ~schema:part_schema in
  let orders = Database.create_table db ~name:"orders" ~schema:orders_schema in
  let lineitem = Database.create_table db ~name:"lineitem" ~schema:lineitem_schema in
  (* PART *)
  for key = 1 to n_parts do
    let p_type =
      Printf.sprintf "%s %s %s" (pick rng type_syllable_1) (pick rng type_syllable_2)
        (pick rng type_syllable_3)
    in
    let retail = 900.0 +. (Rng.float rng *. 1100.0) in
    ignore
      (Table.insert part [| Value.Int key; Value.Str p_type; Value.Float retail |])
  done;
  (* ORDERS + LINEITEM *)
  let order_span = order_date_hi - window_lo + 1 in
  let n_lineitems = ref 0 in
  for okey = 1 to n_orders do
    let o_date = window_lo + Rng.int rng order_span in
    let priority = pick rng priorities in
    let lines = 1 + Rng.int rng 7 in
    let total = ref 0.0 in
    for _ = 1 to lines do
      let partkey = 1 + Rng.int rng n_parts in
      let quantity = 1 + Rng.int rng 50 in
      let retail =
        match Table.get part (partkey - 1) with
        | [| _; _; Value.Float r |] -> r
        | _ -> 1000.0
      in
      let extended = float_of_int quantity *. retail in
      let discount = float_of_int (Rng.int rng 11) /. 100.0 in
      let tax = float_of_int (Rng.int rng 9) /. 100.0 in
      let ship = o_date + 1 + Rng.int rng 121 in
      let commit = o_date + 30 + Rng.int rng 61 in
      let receipt = ship + 1 + Rng.int rng 30 in
      total := !total +. (extended *. (1.0 -. discount));
      ignore
        (Table.insert lineitem
           [| Value.Int okey; Value.Int partkey; Value.Int quantity;
              Value.Float extended; Value.Float discount; Value.Float tax;
              Value.Date ship; Value.Date commit; Value.Date receipt;
              Value.Str (pick rng ship_modes);
              Value.Str (if Rng.int rng 2 = 0 then "N" else "R");
              (* 'F'inished before the spec's currentdate, 'O'pen after. *)
              Value.Str (if ship > Date.of_ymd 1995 6 17 then "O" else "F") |]);
      incr n_lineitems
    done;
    ignore
      (Table.insert orders
         [| Value.Int okey; Value.Int (1 + Rng.int rng (Int.max 1 (n_orders / 10)));
            Value.Date o_date; Value.Str priority; Value.Float !total |])
  done;
  Table.create_index lineitem "l_shipdate";
  Table.create_index orders "o_orderdate";
  Table.create_index orders "o_orderkey";
  Table.create_index part "p_partkey";
  { orders = n_orders; lineitems = !n_lineitems; parts = n_parts }

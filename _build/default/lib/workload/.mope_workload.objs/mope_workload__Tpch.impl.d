lib/workload/tpch.ml: Array Database Date Int Mope_db Mope_stats Printf Rng Schema Table Value

lib/workload/cost_experiment.mli: Datasets Mope_core

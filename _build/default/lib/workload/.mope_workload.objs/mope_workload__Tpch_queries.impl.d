lib/workload/tpch_queries.ml: Array Date Fun Histogram List Mope_db Mope_stats Printf Rng Tpch

lib/workload/tpch_queries.mli: Mope_db Mope_stats

lib/workload/cost_experiment.ml: Array Cost Datasets Histogram Int List Mope_core Mope_ope Mope_stats Query_gen Query_model Rng Scheduler

lib/workload/tpch.mli: Mope_db

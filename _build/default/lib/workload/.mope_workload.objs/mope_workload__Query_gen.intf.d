lib/workload/query_gen.mli: Mope_core Mope_stats

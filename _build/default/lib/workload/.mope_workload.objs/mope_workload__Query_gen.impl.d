lib/workload/query_gen.ml: Array Distributions Float Histogram Int List Mope_core Mope_stats Query_model Rng Special

lib/workload/datasets.mli: Mope_stats

lib/workload/datasets.ml: Array Distributions Histogram List Mope_stats Printf Rng

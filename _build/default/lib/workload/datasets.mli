(** The five value distributions of the paper's evaluation (§6 + Appendix B).

    Each dataset induces the distribution of query {e centres}: "a user is
    more interested in querying records that are densely represented in the
    dataset". The real datasets (Adult, Covertype, SanFran) are not shipped
    here; we synthesize distributions matching their published shapes — what
    the experiments consume is only the skew/multimodality of the histogram,
    never record contents (see DESIGN.md, substitutions). *)

type t = {
  name : string;
  domain : int;            (** M: effective domain size *)
  distribution : Mope_stats.Histogram.t;
  description : string;    (** provenance / synthesis note *)
}

val uniform : unit -> t
(** Every value equally likely; M = 10000. *)

val zipf : unit -> t
(** Power-law access (exponent 1.0); M = 10000. *)

val adult : unit -> t
(** Age attribute of the UCI Adult census dataset, ages 17–90 (M = 74):
    a plateau through the 20s–40s decaying towards 90, matching the
    published age histogram's shape. *)

val covertype : unit -> t
(** Elevation attribute of UCI Covertype, 1859–3858 m (M = 2000):
    a mixture of normals with the main mass near 2900–3250 m. *)

val sanfran : unit -> t
(** Longitudes of California road network nodes binned to 10000 cells
    (M = 10000): a few dense urban clusters over a sparse background. *)

val all : unit -> t list
(** The five datasets in paper order. *)

val pad_to_multiple : t -> rho:int -> t
(** Extend the domain with zero-probability values so that [rho] divides M
    (the periodic algorithm requires it; the paper's Adult runs with ρ = 5,
    10 imply the same padding). Fake queries may land in the pad — they
    simply return no records. *)

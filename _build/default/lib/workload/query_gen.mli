(** Client query workload simulation (paper §6, "Query distributions").

    A query's start position is drawn from the dataset's value distribution
    (users query where the data is dense; the data distribution "determines
    the position of each query") and its length from |N(0, σ²)| (clamped to
    [\[1, M\]]), combining into a range query on the domain. *)

type config = {
  sigma : float;       (** length scale of |N(0,σ²)| *)
  n_queries : int;
}

val sample_length : Mope_stats.Rng.t -> sigma:float -> m:int -> int
(** One query length: [max 1 (round |N(0,σ²)|)], capped at [m]. *)

val sample_query :
  Mope_stats.Rng.t -> data:Mope_stats.Histogram.t -> sigma:float ->
  Mope_core.Query_model.t
(** One range query: start ~ data distribution, length ~ |N(0,σ²)|. *)

val generate :
  Mope_stats.Rng.t -> data:Mope_stats.Histogram.t -> config ->
  Mope_core.Query_model.t list

val start_distribution :
  Mope_stats.Rng.t -> data:Mope_stats.Histogram.t -> sigma:float -> k:int ->
  samples:int -> Mope_stats.Histogram.t
(** Monte-Carlo estimate of the induced distribution over τ_k-transformed
    query {e starts} — the [Q] the scheduler assumes known a priori. *)

val start_distribution_exact :
  data:Mope_stats.Histogram.t -> sigma:float -> k:int ->
  Mope_stats.Histogram.t
(** Exact computation by enumerating (centre, length) pairs with the
    discretized |N(0,σ²)| length pmf (truncated at 6σ). O(M · σ · σ/k);
    used by tests and the smaller experiments. *)

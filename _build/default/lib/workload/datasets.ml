open Mope_stats

type t = {
  name : string;
  domain : int;
  distribution : Histogram.t;
  description : string;
}

let uniform () =
  let domain = 10000 in
  { name = "uniform";
    domain;
    distribution = Histogram.uniform domain;
    description = "Every record equally likely; domain 10000 (paper Appendix B)." }

let zipf () =
  let domain = 10000 in
  { name = "zipf";
    domain;
    distribution = Distributions.zipf ~size:domain ~s:1.0;
    description = "Power-law access pattern, exponent 1.0, domain 10000." }

(* A census-like age pyramid on ages 17..90: counts climb briefly to a
   20s–40s plateau, then decay roughly exponentially towards 90, with age
   heaping on round ages (self-reported census ages pile up on multiples of
   5 and 10). The heaping is what gives the ρ-periodic algorithm its paper-
   reported gains on this dataset: round-age spikes concentrate the class
   maxima in a few congruence classes. *)
let adult () =
  let lo = 17 and hi = 90 in
  let domain = hi - lo + 1 in
  let weight i =
    let age = lo + i in
    let base =
      if age <= 22 then 0.4 +. (0.12 *. float_of_int (age - 17))
      else if age <= 45 then 1.0
      else exp (-0.055 *. float_of_int (age - 45))
    in
    let heaping =
      if age mod 10 = 0 then 2.4 else if age mod 5 = 0 then 1.8 else 1.0
    in
    base *. heaping
  in
  let pmf = Array.init domain weight in
  let total = Array.fold_left ( +. ) 0.0 pmf in
  { name = "adult";
    domain;
    distribution = Histogram.of_pmf (Array.map (fun w -> w /. total) pmf);
    description =
      "Synthetic stand-in for UCI Adult ages 17-90: plateau through 20s-40s, \
       exponential decay after 45, age heaping on round ages." }

(* Covertype elevations 1859..3858 m: bimodal mixture, dominant mass around
   2900-3250 m (spruce/fir zones) with a secondary bump near 2350 m. *)
let covertype () =
  let lo = 1859 and hi = 3858 in
  let domain = hi - lo + 1 in
  let gaussian mean sigma x =
    let z = (x -. mean) /. sigma in
    exp (-0.5 *. z *. z) /. sigma
  in
  let weight i =
    let elevation = float_of_int (lo + i) in
    (0.72 *. gaussian 3050.0 220.0 elevation)
    +. (0.23 *. gaussian 2350.0 160.0 elevation)
    +. (0.05 *. gaussian 2750.0 400.0 elevation)
  in
  let pmf = Array.init domain weight in
  let total = Array.fold_left ( +. ) 0.0 pmf in
  { name = "covertype";
    domain;
    distribution = Histogram.of_pmf (Array.map (fun w -> w /. total) pmf);
    description =
      "Synthetic stand-in for UCI Covertype elevation 1859-3858 m: mixture of \
       normals, dominant mode ~3050 m, secondary ~2350 m." }

(* California road-network longitudes binned to 10000 cells: a handful of
   dense urban clusters (Bay Area, LA basin, San Diego, Sacramento, ...)
   over a sparse rural background. Cluster positions/weights are fixed so
   the dataset is reproducible. *)
let sanfran () =
  let domain = 10000 in
  let clusters =
    (* (centre bin, width in bins, weight) *)
    [ (1200, 60.0, 0.22); (1450, 90.0, 0.10); (2600, 40.0, 0.07);
      (4100, 120.0, 0.16); (4350, 70.0, 0.09); (6100, 55.0, 0.12);
      (7300, 35.0, 0.06); (8200, 90.0, 0.08); (9100, 45.0, 0.05) ]
  in
  let background = 0.05 in
  let gaussian mean sigma x =
    let z = (x -. mean) /. sigma in
    exp (-0.5 *. z *. z) /. sigma
  in
  let weight i =
    let x = float_of_int i in
    List.fold_left
      (fun acc (c, w, mass) -> acc +. (mass *. gaussian (float_of_int c) w x))
      (background /. float_of_int domain)
      clusters
  in
  (* Road-node bins are rough at fine scale (street grids): modulate each
     bin by a fixed pseudo-random factor so per-congruence-class maxima
     differ — the texture the ρ-periodic algorithm exploits (paper §6.1.2). *)
  let rough = Rng.create 424242L in
  let pmf =
    Array.init domain (fun i -> weight i *. (0.35 +. (1.3 *. Rng.float rough)))
  in
  let total = Array.fold_left ( +. ) 0.0 pmf in
  { name = "sanfrancisco";
    domain;
    distribution = Histogram.of_pmf (Array.map (fun w -> w /. total) pmf);
    description =
      "Synthetic stand-in for California road-network longitudes binned to \
       10000 cells: fixed urban clusters over a sparse background." }

let all () = [ uniform (); zipf (); adult (); covertype (); sanfran () ]

let pad_to_multiple t ~rho =
  if rho <= 0 then invalid_arg "Datasets.pad_to_multiple: rho";
  if t.domain mod rho = 0 then t
  else begin
    let padded = ((t.domain / rho) + 1) * rho in
    let pmf = Histogram.pmf t.distribution in
    let extended = Array.make padded 0.0 in
    Array.blit pmf 0 extended 0 t.domain;
    { t with
      domain = padded;
      distribution = Histogram.of_pmf extended;
      description = t.description ^ Printf.sprintf " (padded %d -> %d for rho=%d)" t.domain padded rho }
  end

(** The TPC-H range-query templates the paper evaluates: Q4, Q6 and Q14
    (§6.3). Q1 is excluded there (it touches almost the whole table) and
    here too. Each instance carries the plaintext SQL plus the date range
    the proxy must rewrite. *)

type template = Q4 | Q6 | Q14

type instance = {
  template : template;
  date_lo : Mope_db.Date.t;   (** inclusive start of the range predicate *)
  date_hi : Mope_db.Date.t;   (** inclusive end *)
  sql : string;               (** full plaintext SQL *)
}

val template_name : template -> string

val date_column : template -> string
(** The MOPE-encrypted attribute each template ranges over:
    [l_shipdate] for Q6/Q14, [o_orderdate] for Q4. *)

val fixed_length : template -> int
(** The fixed transformed query length k the paper uses: the template's
    interval in days — 1 year (366) for Q6, 1 month (31) for Q14, 3 months
    (92) for Q4. *)

val start_domain : template -> int list
(** The possible query start days (as MOPE plaintexts) the template can
    draw: Jan 1 of 1993–1997 for Q6, the first of each month 1993–1997 for
    Q14 and of each quarter for Q4 — the known-a-priori Q of §6.3. *)

val start_distribution : ?domain:int -> template -> Mope_stats.Histogram.t
(** Uniform over {!start_domain}, as a histogram over the date domain —
    or over a padded domain [≥ Tpch.date_domain] when the periodic
    algorithm requires ρ to divide it. *)

val random_instance : Mope_stats.Rng.t -> template -> instance
(** Draw template parameters per the TPC-H spec (dates restricted to the
    1993–1997 window the paper uses). *)

val q1_sql : string
(** TPC-H Q1 (pricing summary report) against the plaintext schema. The
    paper excludes Q1 from the encrypted-execution experiments because its
    range retrieves almost the whole table; it is provided for engine
    validation and completeness. *)

open Mope_stats

type mode = Uniform | Periodic of int

type event = Fake of int | Real of int | Replay of int

type t = {
  m : int;
  k : int;
  mode : mode;
  counts : int array;              (* buffer as a histogram over starts *)
  mutable total : int;             (* buffer size, with multiplicity *)
  pending : int array;             (* client instances awaiting execution *)
  mutable pending_total : int;
  mutable cached_est : Histogram.t option;  (* invalidated by [observe] *)
  mutable cached_mix : Completion.t option; (* invalidated by [observe] *)
  mutable snapshot : (int * Histogram.t) option; (* (total at snapshot, estimate) *)
  mutable last_stability : float option;   (* TV between consecutive snapshots *)
}

let create ~m ~k ~mode =
  if m <= 0 then invalid_arg "Adaptive.create: m";
  if k < 1 || k > m then invalid_arg "Adaptive.create: k";
  (match mode with
  | Periodic rho when rho < 1 || m mod rho <> 0 ->
    invalid_arg "Adaptive.create: rho must divide m"
  | Periodic _ | Uniform -> ());
  { m; k; mode;
    counts = Array.make m 0;
    total = 0;
    pending = Array.make m 0;
    pending_total = 0;
    cached_est = None;
    cached_mix = None;
    snapshot = None;
    last_stability = None }

let observe t start =
  if start < 0 || start >= t.m then invalid_arg "Adaptive.observe: start";
  t.counts.(start) <- t.counts.(start) + 1;
  t.total <- t.total + 1;
  t.pending.(start) <- t.pending.(start) + 1;
  t.pending_total <- t.pending_total + 1;
  t.cached_est <- None;
  t.cached_mix <- None

let pending t = t.pending_total

let estimate t =
  if t.total = 0 then invalid_arg "Adaptive.estimate: empty buffer";
  match t.cached_est with
  | Some h -> h
  | None ->
    let h = Histogram.of_counts t.counts in
    t.cached_est <- Some h;
    h

let mix t =
  match t.cached_mix with
  | Some m -> m
  | None ->
    let q = estimate t in
    let m =
      match t.mode with
      | Uniform -> Completion.uniform q
      | Periodic rho -> Completion.periodic q ~rho
    in
    t.cached_mix <- Some m;
    m

let alpha t = if t.total = 0 then 1.0 else (mix t).Completion.alpha

(* Uniform sample from the buffer with replacement = a draw from the
   count-weighted histogram estimate. *)
let sample_buffer t rng = Histogram.sample (estimate t) ~u:(Rng.float rng)

let step t rng =
  if t.total = 0 then None
  else begin
    let { Completion.alpha; completion } = mix t in
    let heads = Distributions.sample_bernoulli rng ~p:alpha in
    match (heads, completion) with
    | false, Some c -> Some (Fake (Histogram.sample c ~u:(Rng.float rng)))
    | false, None | true, _ ->
      let start = sample_buffer t rng in
      if t.pending.(start) > 0 then begin
        t.pending.(start) <- t.pending.(start) - 1;
        t.pending_total <- t.pending_total - 1;
        Some (Real start)
      end
      else Some (Replay start)
  end

let run_until_served t rng ~max_steps =
  let rec loop acc steps =
    if steps >= max_steps || pending t = 0 then List.rev acc
    else
      match step t rng with
      | None -> List.rev acc
      | Some ev -> loop (ev :: acc) (steps + 1)
  in
  loop [] 0

let buffer_size t = t.total

(* ------------------------------------------------------------------ *)
(* Crossover (paper §4 future work): declare the distribution "learned"
   when consecutive estimate snapshots stop moving, then freeze into the
   static scheduler. *)

let stability t ~window =
  if window <= 0 then invalid_arg "Adaptive.stability: window";
  if t.total = 0 then None
  else begin
    (match t.snapshot with
    | None -> t.snapshot <- Some (t.total, estimate t)
    | Some (at, previous) ->
      if t.total - at >= window then begin
        let current = estimate t in
        t.last_stability <- Some (Histogram.total_variation previous current);
        t.snapshot <- Some (t.total, current)
      end);
    t.last_stability
  end

let crossover_ready t ~window ~epsilon =
  match stability t ~window with
  | Some tv -> tv <= epsilon
  | None -> false

let freeze t =
  if t.total = 0 then invalid_arg "Adaptive.freeze: empty buffer";
  let mode =
    match t.mode with
    | Uniform -> Scheduler.Uniform
    | Periodic rho -> Scheduler.Periodic rho
  in
  Scheduler.create ~m:t.m ~k:t.k ~mode ~q:(estimate t)

(** Learning the query distribution online (paper §4).

    [AdaptiveQueryU]/[AdaptiveQueryP]: the proxy keeps a buffer of the
    (transformed) query starts seen so far and uses it as the running
    estimate of the client distribution. Each step flips the coin with the
    {e current} estimate's α; heads executes a uniformly random buffer
    element (with replacement — this is what makes each executed query
    exactly target-distributed), tails executes a fake from the current
    completion. Security is unaffected by the learning; only efficiency
    improves as the estimate converges (§7). *)

type mode = Uniform | Periodic of int

type event =
  | Fake of int
    (** A fake start drawn from the current completion estimate. *)
  | Real of int
    (** A buffer sample serving a still-pending client query instance —
        a "unique real query" in the paper's Fig. 16 accounting. *)
  | Replay of int
    (** A buffer re-sample of a start with no pending instance (sampling is
        with replacement); the paper counts these as fake work. *)

type t

val create : m:int -> k:int -> mode:mode -> t

val observe : t -> int -> unit
(** Add one transformed real query start to the buffer (the paper's
    [buffer.add(q)]); it becomes a pending instance awaiting execution. *)

val pending : t -> int
(** Client query instances observed but not yet served. *)

val step : t -> Mope_stats.Rng.t -> event option
(** Execute one query; [None] when the buffer is still empty. *)

val run_until_served : t -> Mope_stats.Rng.t -> max_steps:int -> event list
(** Step until every observed start has been executed at least once (or
    [max_steps] is hit); returns the executed events in order. *)

val buffer_size : t -> int

val estimate : t -> Mope_stats.Histogram.t
(** The current histogram estimate of the client distribution.
    Raises [Invalid_argument] while the buffer is empty. *)

val alpha : t -> float
(** Current coin bias (1 while the buffer is empty). *)

(** {2 Crossover}

    The paper leaves "determining a cross-over point" — when to declare the
    distribution learned and switch to the static algorithm — as future
    work; these implement the natural rule: freeze once consecutive
    estimate snapshots stop moving in total variation. *)

val stability : t -> window:int -> float option
(** Total-variation distance between the current estimate and the snapshot
    taken at least [window] observations earlier; [None] until two
    snapshots exist. Snapshots advance lazily as this is polled. *)

val crossover_ready : t -> window:int -> epsilon:float -> bool
(** Whether the last snapshot-to-snapshot movement was at most [epsilon]. *)

val freeze : t -> Scheduler.t
(** The static QueryU/QueryP scheduler for the learned estimate — what the
    proxy switches to at the crossover. Raises on an empty buffer. *)

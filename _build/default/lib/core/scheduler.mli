(** The query execution algorithms QueryU and QueryP (paper §3.1–3.2, §5).

    A scheduler holds the client's (known a-priori) distribution over
    fixed-length query starts and its completion; for each incoming real
    query start it decides the interleaving of fake starts and the real one.
    Two equivalent drivers are provided: the paper's literal Bernoulli loop
    and the geometric shortcut of §5 (draw the number of fakes directly from
    [Geom(α)]); both induce the same perceived distribution. *)

type mode =
  | Uniform                (** QueryU: perceived distribution is uniform. *)
  | Periodic of int        (** QueryP\[ρ\]: perceived distribution is ρ-periodic. *)

type t

val create : m:int -> k:int -> mode:mode -> q:Mope_stats.Histogram.t -> t
(** [create ~m ~k ~mode ~q] for a domain of size [m], fixed query length
    [k], and start distribution [q] (size [m]). For [Periodic rho], [rho]
    must divide [m]. *)

val m : t -> int
val k : t -> int
val mode : t -> mode

val alpha : t -> float
(** The real-query coin bias α. *)

val expected_fakes_per_real : t -> float

val completion : t -> Mope_stats.Histogram.t option
(** The fake-start distribution; [None] when no fakes are needed. *)

val perceived : t -> Mope_stats.Histogram.t
(** The server-perceived start distribution. *)

val schedule : t -> Mope_stats.Rng.t -> real:int -> int list
(** Geometric driver: a permuted-order burst of fake starts plus the real
    start [real] in its Bernoulli position — the list of start positions to
    execute, in order. Exactly one element is [real] (the last one: each
    fake precedes the real query it covers, as in [Geom(α)] failures before
    the first success). *)

val schedule_bernoulli : t -> Mope_stats.Rng.t -> real:int -> int list
(** The paper's literal Algorithm QueryU/QueryP loop: repeatedly flip
    [Bern(α)]; tails draw a fake from the completion, heads executes [real]
    and stops. Distributionally identical to {!schedule}. *)

val sample_fake : t -> Mope_stats.Rng.t -> int option
(** One fake start from the completion distribution ([None] if no fakes are
    ever needed). *)

(** Range queries and the fixed-length transformation τ_k (paper §3.1).

    A user query is an inclusive interval over the plaintext domain [\[0, m)]
    (wrap-around allowed, as MOPE supports it). To keep the query histogram
    O(M) instead of O(M²), every query is decomposed into queries of one
    fixed length [k], each identified by its start position alone. *)

type t = { lo : int; hi : int }
(** Inclusive interval on [\[0, m)]; [hi < lo] wraps. *)

val make : m:int -> lo:int -> hi:int -> t
(** Normalize endpoints into the domain. *)

val of_center : m:int -> center:int -> len:int -> t
(** Query of [len ≥ 1] values centred (left-biased) on [center] — how the
    paper§6 workload generator turns a sampled centre and length into a
    range. *)

val length : m:int -> t -> int
(** Number of domain values covered. *)

val transform : m:int -> k:int -> t -> int list
(** τ_k: start positions of the fixed-length-[k] queries covering [t].
    A query shorter than [k] becomes the single start [t.lo]; a longer one
    is chopped into [⌈len/k⌉] consecutive length-[k] queries starting at
    [t.lo] (the last one overshooting). The union always covers [t]. *)

val coverage : m:int -> k:int -> int -> t
(** The interval covered by a fixed query starting at a position. *)

val covered : m:int -> k:int -> starts:int list -> t -> bool
(** Whether the union of fixed queries covers every point of [t]. *)

val overshoot : m:int -> k:int -> t -> int
(** Number of domain values returned by τ_k(t) beyond those of [t]
    (the Bandwidth numerator's transformation-excess term, in value space). *)

lib/core/cost.mli:

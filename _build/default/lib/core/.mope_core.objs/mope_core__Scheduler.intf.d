lib/core/scheduler.mli: Mope_stats

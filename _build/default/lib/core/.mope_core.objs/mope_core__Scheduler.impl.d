lib/core/scheduler.ml: Completion Distributions Histogram List Mope_stats Rng

lib/core/pacer.ml: Float List Queue

lib/core/cost.ml: List

lib/core/pacer.mli:

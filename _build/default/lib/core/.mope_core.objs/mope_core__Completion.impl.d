lib/core/completion.ml: Array Float Histogram Mope_stats

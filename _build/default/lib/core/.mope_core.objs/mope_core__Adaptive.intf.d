lib/core/adaptive.mli: Mope_stats Scheduler

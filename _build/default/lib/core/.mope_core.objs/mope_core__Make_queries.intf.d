lib/core/make_queries.mli: Mope_ope Mope_stats Query_model Scheduler

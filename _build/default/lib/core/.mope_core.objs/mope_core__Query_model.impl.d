lib/core/query_model.ml: Int List Modular Mope_ope

lib/core/make_queries.ml: List Modular Mope Mope_ope Query_model Scheduler

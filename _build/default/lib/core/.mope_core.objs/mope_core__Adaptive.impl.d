lib/core/adaptive.ml: Array Completion Distributions Histogram List Mope_stats Rng Scheduler

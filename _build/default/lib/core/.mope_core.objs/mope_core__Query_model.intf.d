lib/core/query_model.mli:

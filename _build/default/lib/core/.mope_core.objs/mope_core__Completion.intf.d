lib/core/completion.mli: Mope_stats

open Mope_ope

type t = { lo : int; hi : int }

let make ~m ~lo ~hi =
  { lo = Modular.normalize ~m lo; hi = Modular.normalize ~m hi }

let of_center ~m ~center ~len =
  if len < 1 then invalid_arg "Query_model.of_center: len";
  if len > m then invalid_arg "Query_model.of_center: len exceeds domain";
  let lo = Modular.sub ~m center (len / 2) in
  let hi = Modular.add ~m lo (len - 1) in
  { lo; hi }

let length ~m t = Modular.interval_length ~m ~lo:t.lo ~hi:t.hi

let transform ~m ~k t =
  if k < 1 then invalid_arg "Query_model.transform: k";
  let len = length ~m t in
  let pieces = if len <= k then 1 else (len + k - 1) / k in
  List.init pieces (fun i -> Modular.add ~m t.lo (i * k))

let coverage ~m ~k start =
  let start = Modular.normalize ~m start in
  if k >= m then { lo = 0; hi = m - 1 }
  else { lo = start; hi = Modular.add ~m start (k - 1) }

let covered ~m ~k ~starts t =
  let in_some_piece x =
    List.exists
      (fun s ->
        let piece = coverage ~m ~k s in
        Modular.mem ~m ~lo:piece.lo ~hi:piece.hi x)
      starts
  in
  let len = length ~m t in
  let rec check i = i >= len || (in_some_piece (Modular.add ~m t.lo i) && check (i + 1)) in
  check 0

let overshoot ~m ~k t =
  let len = length ~m t in
  let pieces = if len <= k then 1 else (len + k - 1) / k in
  Int.min m (pieces * k) - Int.min len (Int.min m (pieces * k))

open Mope_ope

type encrypted_query = { c_lo : int; c_hi : int }

type labelled =
  | Real_piece of encrypted_query
  | Fake_piece of encrypted_query

let encrypt_start ~mope ~k start =
  let m = Mope.domain mope in
  let lo = Modular.normalize ~m start in
  let hi = Modular.add ~m lo (k - 1) in
  let c_lo, c_hi = Mope.encrypt_range mope ~lo ~hi in
  { c_lo; c_hi }

let run ~mope ~scheduler ~rng ~queries =
  let m = Mope.domain mope and k = Scheduler.k scheduler in
  if m <> Scheduler.m scheduler then invalid_arg "Make_queries.run: domain mismatch";
  List.concat_map
    (fun query ->
      let pieces = Query_model.transform ~m ~k query in
      List.concat_map
        (fun real ->
          let executed = Scheduler.schedule scheduler rng ~real in
          (* [schedule] places the real start last; label by position so a
             fake that coincidentally equals [real] stays labelled fake. *)
          let last = List.length executed - 1 in
          List.mapi
            (fun i start ->
              let eq = encrypt_start ~mope ~k start in
              if i = last then Real_piece eq else Fake_piece eq)
            executed)
        pieces)
    queries

let run_naive ~mope ~k ~queries =
  let m = Mope.domain mope in
  List.concat_map
    (fun query ->
      Query_model.transform ~m ~k query
      |> List.map (fun start -> Real_piece (encrypt_start ~mope ~k start)))
    queries

let strip labelled =
  List.map (function Real_piece q | Fake_piece q -> q) labelled

open Mope_stats

type mode = Uniform | Periodic of int

type t = {
  m : int;
  k : int;
  mode : mode;
  q : Histogram.t;
  mix : Completion.t;
}

let create ~m ~k ~mode ~q =
  if m <= 0 then invalid_arg "Scheduler.create: m";
  if k < 1 || k > m then invalid_arg "Scheduler.create: k must be in [1, m]";
  if Histogram.size q <> m then invalid_arg "Scheduler.create: q size mismatch";
  let mix =
    match mode with
    | Uniform -> Completion.uniform q
    | Periodic rho ->
      if rho < 1 || m mod rho <> 0 then
        invalid_arg "Scheduler.create: rho must divide m";
      Completion.periodic q ~rho
  in
  { m; k; mode; q; mix }

let m t = t.m
let k t = t.k
let mode t = t.mode
let alpha t = t.mix.Completion.alpha
let expected_fakes_per_real t = Completion.expected_fakes_per_real t.mix
let completion t = t.mix.Completion.completion
let perceived t = Completion.perceived t.q t.mix

let sample_fake t rng =
  match t.mix.Completion.completion with
  | None -> None
  | Some c -> Some (Histogram.sample c ~u:(Rng.float rng))

let schedule t rng ~real =
  match t.mix.Completion.completion with
  | None -> [ real ]
  | Some c ->
    let fakes = Distributions.sample_geometric rng ~p:t.mix.Completion.alpha in
    let starts =
      List.init fakes (fun _ -> Histogram.sample c ~u:(Rng.float rng))
    in
    starts @ [ real ]

let schedule_bernoulli t rng ~real =
  match t.mix.Completion.completion with
  | None -> [ real ]
  | Some c ->
    let rec loop acc =
      if Distributions.sample_bernoulli rng ~p:t.mix.Completion.alpha then
        List.rev (real :: acc)
      else loop (Histogram.sample c ~u:(Rng.float rng) :: acc)
    in
    loop []

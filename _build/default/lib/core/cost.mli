(** The two cost functions of the paper's evaluation (§6).

    [Bandwidth] charges the records moved beyond what the raw queries need:
    fake-query records plus the overshoot that the τ_k transformation adds,
    normalized by the real queries' record volume. [Requests] charges the
    relative blow-up in the number of server round-trips. *)

type t = {
  mutable real_queries : int;        (** |R|: original client queries *)
  mutable transformed_queries : int; (** |T|: fixed-length pieces of R *)
  mutable fake_queries : int;        (** |F| *)
  mutable real_records : int;        (** Σ_{q∈R} |q| *)
  mutable fake_records : int;        (** Σ_{q∈F} |q| *)
  mutable excess_records : int;      (** records fetched by τ_k(q) beyond q *)
}

val create : unit -> t

val add : t -> t -> unit
(** Accumulate the second tally into the first. *)

val bandwidth : t -> float
(** [(fake_records + excess_records) / real_records]. The paper's formula
    estimates the excess term as [Σ_{q∈R} (|q| mod k)]; we measure the actual
    overshoot (identical for uniform per-value record density). Returns 0
    when no real records were fetched. *)

val bandwidth_paper_estimate : k:int -> real_sizes:int list -> fake_records:int -> float
(** The literal §6 estimator [(Σ_F |q| + Σ_R (|q| mod k)) / Σ_R |q|]. *)

val requests : t -> float
(** [(|T| + |F|) / |R|]; 0 when no real queries ran. *)

open Mope_stats

type t = {
  alpha : float;
  completion : Histogram.t option;
}

(* A target is described by giving each element its per-element target cap:
   [cap i] is μ for uniform, η_{i mod ρ} for ρ-periodic. The completion mass
   at i is cap(i) − Q(i) ≥ 0, and α = 1 / Σ_i cap(i). *)
let of_caps q cap =
  let m = Histogram.size q in
  let total_cap = ref 0.0 in
  for i = 0 to m - 1 do
    total_cap := !total_cap +. cap i
  done;
  let alpha = 1.0 /. !total_cap in
  (* Residual fake mass; within 1 ulp of (1/α − 1). *)
  let residual = !total_cap -. 1.0 in
  if residual <= 1e-12 then { alpha = 1.0; completion = None }
  else begin
    let pmf =
      Array.init m (fun i -> Float.max 0.0 (cap i -. Histogram.prob q i) /. residual)
    in
    (* Normalize away accumulated rounding before the mass check. *)
    let total = Array.fold_left ( +. ) 0.0 pmf in
    let pmf = Array.map (fun p -> p /. total) pmf in
    { alpha; completion = Some (Histogram.of_pmf pmf) }
  end

let uniform q =
  let mu = Histogram.max_prob q in
  of_caps q (fun _ -> mu)

let periodic q ~rho =
  let eta, _mean = Histogram.periodic_eta q ~rho in
  of_caps q (fun i -> eta.(i mod rho))

let expected_fakes_per_real t =
  if t.alpha >= 1.0 then 0.0 else (1.0 -. t.alpha) /. t.alpha

let perceived q t =
  match t.completion with
  | None -> q
  | Some c -> Histogram.mix t.alpha q c

type t = {
  mutable real_queries : int;
  mutable transformed_queries : int;
  mutable fake_queries : int;
  mutable real_records : int;
  mutable fake_records : int;
  mutable excess_records : int;
}

let create () =
  { real_queries = 0; transformed_queries = 0; fake_queries = 0;
    real_records = 0; fake_records = 0; excess_records = 0 }

let add acc t =
  acc.real_queries <- acc.real_queries + t.real_queries;
  acc.transformed_queries <- acc.transformed_queries + t.transformed_queries;
  acc.fake_queries <- acc.fake_queries + t.fake_queries;
  acc.real_records <- acc.real_records + t.real_records;
  acc.fake_records <- acc.fake_records + t.fake_records;
  acc.excess_records <- acc.excess_records + t.excess_records

let bandwidth t =
  if t.real_records = 0 then 0.0
  else
    float_of_int (t.fake_records + t.excess_records) /. float_of_int t.real_records

let bandwidth_paper_estimate ~k ~real_sizes ~fake_records =
  let real_total = List.fold_left ( + ) 0 real_sizes in
  if real_total = 0 then 0.0
  else begin
    let excess = List.fold_left (fun acc s -> acc + (s mod k)) 0 real_sizes in
    float_of_int (fake_records + excess) /. float_of_int real_total
  end

let requests t =
  if t.real_queries = 0 then 0.0
  else
    float_of_int (t.transformed_queries + t.fake_queries)
    /. float_of_int t.real_queries

(** The [MakeQueries] algorithm of the security model (paper §7.2): turn an
    un-encrypted client query sequence into the encrypted query sequence an
    adversary observes, with the real encrypted queries embedded among the
    fakes according to a scheduler. *)

type encrypted_query = { c_lo : int; c_hi : int }
(** A ciphertext interval as the server sees it; [c_hi < c_lo] wraps. *)

type labelled =
  | Real_piece of encrypted_query   (** a τ_k piece of a client query *)
  | Fake_piece of encrypted_query

val encrypt_start : mope:Mope_ope.Mope.t -> k:int -> int -> encrypted_query
(** Encrypt the fixed-length-[k] query starting at a plaintext position
    into its ciphertext endpoint pair. *)

val run :
  mope:Mope_ope.Mope.t ->
  scheduler:Scheduler.t ->
  rng:Mope_stats.Rng.t ->
  queries:Query_model.t list ->
  labelled list
(** Full pipeline: τ_k-transform each client query, interleave fakes per the
    scheduler, encrypt every executed start. The adversary in the WOW*
    experiments sees this stream with the labels removed. *)

val run_naive :
  mope:Mope_ope.Mope.t -> k:int -> queries:Query_model.t list -> labelled list
(** No fakes at all — the vulnerable baseline the gap attack exploits. *)

val strip : labelled list -> encrypted_query list
(** Drop the real/fake labels (the adversary's view). *)

(* Tests for lib/crypto: SHA-256/HMAC against published vectors, DRBG
   determinism and uniformity, Feistel/FPE bijectivity. *)

open Mope_crypto

let check_eq t msg a b = Alcotest.check t msg a b

(* ------------------------------------------------------------------ *)
(* SHA-256: FIPS 180-4 / NIST CAVP vectors *)

let sha_vectors =
  [ ("", "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
    ("abc", "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
    ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
    ( "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
       ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu",
      "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1" );
    ("a", "ca978112ca1bbdcafac231b39a23dc4da786eff8147c4e72b9807785afee48bb") ]

let test_sha_vectors () =
  List.iter
    (fun (input, expected) ->
      check_eq Alcotest.string ("sha256 of " ^ String.escaped input) expected
        (Sha256.digest_hex input))
    sha_vectors

let test_sha_million_a () =
  check_eq Alcotest.string "million 'a'"
    "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
    (Sha256.digest_hex (String.make 1_000_000 'a'))

let test_sha_incremental_matches_oneshot () =
  (* Feeding in odd-sized chunks must match a one-shot digest. *)
  let data = String.init 1000 (fun i -> Char.chr (i mod 256)) in
  let chunked sizes =
    let ctx = Sha256.init () in
    let pos = ref 0 in
    List.iter
      (fun len ->
        let len = Int.min len (String.length data - !pos) in
        Sha256.feed ctx (String.sub data !pos len);
        pos := !pos + len)
      sizes;
    Sha256.feed ctx (String.sub data !pos (String.length data - !pos));
    Sha256.hex (Sha256.finalize ctx)
  in
  let oneshot = Sha256.digest_hex data in
  check_eq Alcotest.string "chunks of 1" oneshot (chunked (List.init 1000 (fun _ -> 1)));
  check_eq Alcotest.string "chunks of 63" oneshot (chunked [ 63; 63; 63; 63 ]);
  check_eq Alcotest.string "chunks of 64" oneshot (chunked [ 64; 64; 64 ]);
  check_eq Alcotest.string "chunks of 65" oneshot (chunked [ 65; 65; 65 ]);
  check_eq Alcotest.string "big then small" oneshot (chunked [ 900; 1; 1 ])

let test_sha_length_boundary () =
  (* Messages straddling the 55/56/64-byte padding boundaries. *)
  List.iter
    (fun n ->
      let s = String.make n 'x' in
      let reference = Sha256.digest s in
      let ctx = Sha256.init () in
      String.iter (fun c -> Sha256.feed ctx (String.make 1 c)) s;
      check_eq Alcotest.string
        (Printf.sprintf "len %d" n)
        (Sha256.hex reference)
        (Sha256.hex (Sha256.finalize ctx)))
    [ 0; 1; 54; 55; 56; 57; 63; 64; 65; 119; 120; 128 ]

(* ------------------------------------------------------------------ *)
(* HMAC-SHA256: RFC 4231 vectors *)

let test_hmac_rfc4231 () =
  let vectors =
    [ ( String.make 20 '\x0b',
        "Hi There",
        "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7" );
      ( "Jefe",
        "what do ya want for nothing?",
        "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843" );
      ( String.make 20 '\xaa',
        String.make 50 '\xdd',
        "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe" );
      ( String.init 25 (fun i -> Char.chr (i + 1)),
        String.make 50 '\xcd',
        "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b" );
      ( String.make 131 '\xaa',
        "Test Using Larger Than Block-Size Key - Hash Key First",
        "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54" ) ]
  in
  List.iter
    (fun (key, msg, expected) ->
      check_eq Alcotest.string "rfc4231" expected (Hmac.mac_hex ~key msg))
    vectors

let test_hmac_key_lengths () =
  (* Same data, key shorter / equal / longer than the 64-byte block. *)
  let tags =
    List.map (fun n -> Hmac.mac_hex ~key:(String.make n 'k') "data") [ 1; 64; 65; 200 ]
  in
  let distinct = List.sort_uniq compare tags in
  check_eq Alcotest.int "distinct tags" (List.length tags) (List.length distinct)

(* ------------------------------------------------------------------ *)
(* DRBG *)

let test_drbg_deterministic () =
  let a = Drbg.create ~key:"k" ~context:"ctx" in
  let b = Drbg.create ~key:"k" ~context:"ctx" in
  check_eq Alcotest.string "same stream" (Drbg.bytes a 256) (Drbg.bytes b 256)

let test_drbg_context_separation () =
  let a = Drbg.create ~key:"k" ~context:"ctx1" in
  let b = Drbg.create ~key:"k" ~context:"ctx2" in
  let c = Drbg.create ~key:"k2" ~context:"ctx1" in
  let sa = Drbg.bytes a 32 and sb = Drbg.bytes b 32 and sc = Drbg.bytes c 32 in
  Alcotest.(check bool) "ctx differs" true (sa <> sb);
  Alcotest.(check bool) "key differs" true (sa <> sc)

let test_drbg_derive_unambiguous () =
  let a = Drbg.derive ~key:"k" ~parts:[ "ab"; "c" ] in
  let b = Drbg.derive ~key:"k" ~parts:[ "a"; "bc" ] in
  Alcotest.(check bool) "length-prefixing separates parts" true
    (Drbg.bytes a 32 <> Drbg.bytes b 32)

let test_drbg_uniform_range () =
  let t = Drbg.create ~key:"k" ~context:"uniform" in
  for _ = 1 to 5000 do
    let x = Drbg.uniform t 7 in
    if x < 0 || x >= 7 then Alcotest.fail "uniform out of range"
  done

let test_drbg_uniform_unbiased () =
  (* Chi-square over a non-power-of-two modulus. *)
  let t = Drbg.create ~key:"k" ~context:"chi" in
  let counts = Array.make 10 0 in
  let n = 20000 in
  for _ = 1 to n do
    let x = Drbg.uniform t 10 in
    counts.(x) <- counts.(x) + 1
  done;
  let chi = Mope_stats.Summary.chi_square_uniform counts in
  (* 9 dof: p=0.001 critical value is 27.88. *)
  Alcotest.(check bool) (Printf.sprintf "chi=%f" chi) true (chi < 27.88)

let test_drbg_float53_range () =
  let t = Drbg.create ~key:"k" ~context:"floats" in
  let sum = ref 0.0 in
  for _ = 1 to 10000 do
    let f = Drbg.float53 t in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float53 out of range";
    sum := !sum +. f
  done;
  let mean = !sum /. 10000.0 in
  Alcotest.(check bool) (Printf.sprintf "mean=%f" mean) true
    (Float.abs (mean -. 0.5) < 0.02)

let test_drbg_uniform64 () =
  let t = Drbg.create ~key:"k" ~context:"u64" in
  for _ = 1 to 1000 do
    let x = Drbg.uniform64 t 1_000_000_007L in
    if Int64.compare x 0L < 0 || Int64.compare x 1_000_000_007L >= 0 then
      Alcotest.fail "uniform64 out of range"
  done

let test_drbg_invalid_args () =
  let t = Drbg.create ~key:"k" ~context:"x" in
  Alcotest.check_raises "uniform 0" (Invalid_argument "Drbg.uniform")
    (fun () -> ignore (Drbg.uniform t 0));
  Alcotest.check_raises "bits 63" (Invalid_argument "Drbg.bits")
    (fun () -> ignore (Drbg.bits t 63))

(* ------------------------------------------------------------------ *)
(* Feistel / FPE *)

let test_feistel_bijection =
  QCheck.Test.make ~name:"feistel permute/unpermute roundtrip" ~count:500
    QCheck.int64 (fun x ->
      Feistel.unpermute ~key:"k" (Feistel.permute ~key:"k" x) = x)

let test_fpe_roundtrip =
  QCheck.Test.make ~name:"fpe encrypt/decrypt roundtrip" ~count:300
    QCheck.(pair (int_range 1 5000) (int_range 0 4999))
    (fun (domain, x) ->
      QCheck.assume (x < domain);
      Feistel.fpe_decrypt ~key:"k" ~domain (Feistel.fpe_encrypt ~key:"k" ~domain x) = x)

let test_fpe_is_permutation () =
  (* Over a small domain, the image must be exactly the domain. *)
  List.iter
    (fun domain ->
      let image =
        List.init domain (fun x -> Feistel.fpe_encrypt ~key:"perm" ~domain x)
      in
      let sorted = List.sort_uniq Int.compare image in
      check_eq Alcotest.int
        (Printf.sprintf "image size for %d" domain)
        domain (List.length sorted);
      Alcotest.(check bool) "in range" true
        (List.for_all (fun c -> c >= 0 && c < domain) image))
    [ 1; 2; 3; 10; 97; 256; 1000 ]

let test_fpe_key_separation () =
  let e k = List.init 50 (fun x -> Feistel.fpe_encrypt ~key:k ~domain:50 x) in
  Alcotest.(check bool) "different keys permute differently" true (e "a" <> e "b")

let test_rnd_roundtrip () =
  let key = "rnd-key" and nonce = "n-42" in
  let plaintext = "the quick brown fox \x00\x01\xff jumps" in
  let ct = Feistel.rnd_encrypt ~key ~nonce plaintext in
  Alcotest.(check bool) "ciphertext differs" true (ct <> plaintext);
  check_eq Alcotest.string "roundtrip" plaintext (Feistel.rnd_decrypt ~key ~nonce ct);
  let ct2 = Feistel.rnd_encrypt ~key ~nonce:"n-43" plaintext in
  Alcotest.(check bool) "nonce separation" true (ct <> ct2)

let () =
  Alcotest.run "crypto"
    [ ( "sha256",
        [ Alcotest.test_case "NIST vectors" `Quick test_sha_vectors;
          Alcotest.test_case "million a" `Slow test_sha_million_a;
          Alcotest.test_case "incremental = one-shot" `Quick
            test_sha_incremental_matches_oneshot;
          Alcotest.test_case "padding boundaries" `Quick test_sha_length_boundary ] );
      ( "hmac",
        [ Alcotest.test_case "RFC 4231 vectors" `Quick test_hmac_rfc4231;
          Alcotest.test_case "key length handling" `Quick test_hmac_key_lengths ] );
      ( "drbg",
        [ Alcotest.test_case "deterministic" `Quick test_drbg_deterministic;
          Alcotest.test_case "context separation" `Quick test_drbg_context_separation;
          Alcotest.test_case "derive unambiguous" `Quick test_drbg_derive_unambiguous;
          Alcotest.test_case "uniform range" `Quick test_drbg_uniform_range;
          Alcotest.test_case "uniform unbiased" `Quick test_drbg_uniform_unbiased;
          Alcotest.test_case "float53" `Quick test_drbg_float53_range;
          Alcotest.test_case "uniform64" `Quick test_drbg_uniform64;
          Alcotest.test_case "invalid args" `Quick test_drbg_invalid_args ] );
      ( "feistel",
        [ QCheck_alcotest.to_alcotest test_feistel_bijection;
          QCheck_alcotest.to_alcotest test_fpe_roundtrip;
          Alcotest.test_case "small-domain permutation" `Quick test_fpe_is_permutation;
          Alcotest.test_case "key separation" `Quick test_fpe_key_separation;
          Alcotest.test_case "rnd mode roundtrip" `Quick test_rnd_roundtrip ] ) ]

(* Tests for lib/attack: the gap attack (and its neutralization by QueryU),
   the empirical WOW* experiments against the §7 bounds, and the periodic
   shift-recovery attack. *)

open Mope_stats
open Mope_core
open Mope_attack

(* ------------------------------------------------------------------ *)
(* largest_empty_arc *)

let test_arc_simple () =
  let g = Gap_attack.largest_empty_arc ~n:10 [ 0; 1; 2; 7 ] in
  (* gaps: after 2 -> 3..6 (len 4); after 7 -> 8..9 (len 2, wraps to 0) *)
  Alcotest.(check int) "arc starts at 3" 3 g.Gap_attack.arc_lo;
  Alcotest.(check int) "length 4" 4 g.Gap_attack.arc_len;
  Alcotest.(check int) "next observed" 7 g.Gap_attack.next_start

let test_arc_wrapping () =
  let g = Gap_attack.largest_empty_arc ~n:10 [ 4; 5 ] in
  (* Biggest arc wraps: 6..3 (len 8), next observed 4. *)
  Alcotest.(check int) "arc lo" 6 g.Gap_attack.arc_lo;
  Alcotest.(check int) "len" 8 g.Gap_attack.arc_len;
  Alcotest.(check int) "next" 4 g.Gap_attack.next_start

let test_arc_single_point () =
  let g = Gap_attack.largest_empty_arc ~n:100 [ 42 ] in
  Alcotest.(check int) "everything but the point" 99 g.Gap_attack.arc_len;
  Alcotest.(check int) "next" 42 g.Gap_attack.next_start

let test_arc_duplicates_ignored () =
  let a = Gap_attack.largest_empty_arc ~n:50 [ 3; 3; 3; 20 ] in
  let b = Gap_attack.largest_empty_arc ~n:50 [ 3; 20 ] in
  Alcotest.(check bool) "duplicates don't matter" true (a = b)

let test_arc_empty_raises () =
  Alcotest.check_raises "no observations"
    (Invalid_argument "Gap_attack.largest_empty_arc: no observations") (fun () ->
      ignore (Gap_attack.largest_empty_arc ~n:10 []))

(* ------------------------------------------------------------------ *)
(* Gap attack success rates (the Fig. 1 story) *)

let valid_uniform ~m ~k =
  let pmf = Array.init m (fun i -> if i <= m - k then 1.0 else 0.0) in
  let total = Array.fold_left ( +. ) 0.0 pmf in
  Histogram.of_pmf (Array.map (fun p -> p /. total) pmf)

let test_gap_attack_on_naive () =
  let rate =
    Gap_attack.success_rate ~m:100 ~k:10 ~n_queries:400 ~trials:30 ~seed:1L
      ~fake_mix:None
  in
  Alcotest.(check bool) (Printf.sprintf "naive rate %.2f" rate) true (rate > 0.7)

let test_gap_attack_neutralized_by_queryu () =
  let sched =
    Scheduler.create ~m:100 ~k:10 ~mode:Scheduler.Uniform ~q:(valid_uniform ~m:100 ~k:10)
  in
  let rate =
    Gap_attack.success_rate ~m:100 ~k:10 ~n_queries:400 ~trials:30 ~seed:1L
      ~fake_mix:(Some sched)
  in
  Alcotest.(check bool) (Printf.sprintf "mixed rate %.2f" rate) true (rate < 0.15)

let test_gap_attack_more_queries_help () =
  let few =
    Gap_attack.success_rate ~m:200 ~k:10 ~n_queries:30 ~trials:30 ~seed:2L ~fake_mix:None
  in
  let many =
    Gap_attack.success_rate ~m:200 ~k:10 ~n_queries:2000 ~trials:30 ~seed:2L ~fake_mix:None
  in
  Alcotest.(check bool)
    (Printf.sprintf "few %.2f <= many %.2f" few many)
    true (few <= many +. 0.1)

(* ------------------------------------------------------------------ *)
(* WOW experiments *)

let cfg = { Wow.default with Wow.trials = 120 }

let test_wow_location_naive_leaks () =
  let naive = Wow.location_success cfg Wow.Naive in
  let baseline = Wow.random_guess cfg in
  Alcotest.(check bool)
    (Printf.sprintf "naive %.3f >> random %.3f" naive baseline)
    true
    (naive > 3.0 *. baseline)

let test_wow_location_queryu_at_bound () =
  let success = Wow.location_success cfg (Wow.Mixed Scheduler.Uniform) in
  let bound = Wow.location_bound cfg (Wow.Mixed Scheduler.Uniform) in
  (* Theorem 3: within sampling noise of w/M. *)
  Alcotest.(check bool)
    (Printf.sprintf "QueryU %.3f ~ bound %.3f" success bound)
    true
    (success < (3.0 *. bound) +. 0.02)

let test_wow_location_queryp_within_bound () =
  let success = Wow.location_success cfg (Wow.Mixed (Scheduler.Periodic 10)) in
  let bound = Wow.location_bound cfg (Wow.Mixed (Scheduler.Periodic 10)) in
  Alcotest.(check bool)
    (Printf.sprintf "QueryP %.3f <= bound %.3f" success bound)
    true (success <= bound +. 0.05)

let test_wow_distance_leaks_everywhere () =
  let naive = Wow.distance_success cfg Wow.Naive in
  let mixed = Wow.distance_success cfg (Wow.Mixed Scheduler.Uniform) in
  let baseline = Wow.random_guess cfg in
  Alcotest.(check bool) "naive distance leaks" true (naive > 5.0 *. baseline);
  Alcotest.(check bool) "QueryU does not hide distance" true (mixed > 5.0 *. baseline);
  let bound = Wow.distance_bound cfg in
  Alcotest.(check bool) "within Theorem 4 bound" true
    (naive <= bound && mixed <= bound)

let test_wow_bounds_shape () =
  Alcotest.(check (float 1e-12)) "uniform bound" 0.02
    (Wow.location_bound cfg (Wow.Mixed Scheduler.Uniform));
  Alcotest.(check (float 1e-12)) "periodic bound" 0.2
    (Wow.location_bound cfg (Wow.Mixed (Scheduler.Periodic 10)));
  Alcotest.(check (float 1e-12)) "naive bound" 1.0 (Wow.location_bound cfg Wow.Naive);
  Alcotest.(check bool) "distance bound in (0,1]" true
    (Wow.distance_bound cfg > 0.0 && Wow.distance_bound cfg <= 1.0)

(* ------------------------------------------------------------------ *)
(* Periodic shift recovery *)

let test_periodic_shift_recovers_class () =
  let out =
    Periodic_shift.run ~m:100 ~k:5 ~rho:20 ~n_queries:400 ~trials:30 ~seed:7L
      ~q:(Distributions.zipf ~size:100 ~s:1.2)
  in
  Alcotest.(check bool)
    (Printf.sprintf "class success %.2f" out.Periodic_shift.class_success)
    true
    (out.Periodic_shift.class_success > 0.9);
  (* Full recovery must stay near rho/m = 0.2. *)
  Alcotest.(check bool)
    (Printf.sprintf "full success %.2f" out.Periodic_shift.full_success)
    true
    (out.Periodic_shift.full_success < 0.45)

let test_periodic_shift_validates_rho () =
  Alcotest.check_raises "rho must divide m"
    (Invalid_argument "Periodic_shift.run: rho must divide m") (fun () ->
      ignore
        (Periodic_shift.run ~m:100 ~k:5 ~rho:30 ~n_queries:10 ~trials:1 ~seed:1L
           ~q:(Histogram.uniform 100)))


(* ------------------------------------------------------------------ *)
(* Theorems 1-2 baseline (query-free) *)

let test_baseline_rows () =
  let cfg = { Wow_baseline.default with Wow_baseline.trials = 120 } in
  match Wow_baseline.run cfg with
  | [ ope; mope ] ->
    let chance = Wow_baseline.location_random_guess cfg in
    Alcotest.(check string) "first row" "OPE" ope.Wow_baseline.scheme;
    Alcotest.(check bool)
      (Printf.sprintf "OPE location %.3f leaks" ope.Wow_baseline.location)
      true
      (ope.Wow_baseline.location > 3.0 *. chance);
    Alcotest.(check bool)
      (Printf.sprintf "MOPE location %.3f hidden" mope.Wow_baseline.location)
      true
      (mope.Wow_baseline.location < 2.0 *. chance);
    Alcotest.(check bool) "distance leaks under both" true
      (ope.Wow_baseline.distance > 5.0 *. chance
      && mope.Wow_baseline.distance > 5.0 *. chance)
  | _ -> Alcotest.fail "expected two rows"

(* ------------------------------------------------------------------ *)
(* Frequency analysis on DET columns *)

let test_frequency_attack_matching () =
  (* Deterministic matching on a hand-built case. *)
  let guesses =
    Frequency.attack
      ~ciphertexts:[ 7; 7; 7; 3; 3; 9 ]
      ~known_frequencies:[ (0, 0.5); (1, 0.3); (2, 0.2) ]
  in
  Alcotest.(check (list (pair int int))) "rank matching"
    [ (7, 0); (3, 1); (9, 2) ] guesses

let test_frequency_attack_skewed_column () =
  let out =
    Frequency.experiment ~domain:100 ~zipf_s:1.3 ~n_rows:3000 ~trials:10 ~seed:4L
  in
  Alcotest.(check bool)
    (Printf.sprintf "skewed column recovered %.2f" out.Frequency.recovered)
    true
    (out.Frequency.recovered > 0.5)

let test_frequency_attack_uniform_column () =
  let out =
    Frequency.experiment ~domain:1000 ~zipf_s:0.0 ~n_rows:2000 ~trials:10 ~seed:5L
  in
  Alcotest.(check bool)
    (Printf.sprintf "uniform column only %.3f of distinct values" out.Frequency.distinct_recovered)
    true
    (out.Frequency.distinct_recovered < 0.05)


(* ------------------------------------------------------------------ *)
(* Sorting attack on dense columns *)

let test_sorting_attack_pairs () =
  let guesses = Sorting_attack.attack ~m:4 ~ciphertexts:[ 90; 5; 5; 42; 17 ] in
  Alcotest.(check (list (pair int int))) "rank pairing"
    [ (5, 0); (17, 1); (42, 2); (90, 3) ] guesses

let test_sorting_attack_experiment () =
  let out = Sorting_attack.experiment ~m:150 ~trials:5 ~seed:3L in
  Alcotest.(check (float 1e-9)) "OPE falls completely" 1.0
    out.Sorting_attack.ope_recovery;
  Alcotest.(check bool)
    (Printf.sprintf "MOPE resists (%.4f)" out.Sorting_attack.mope_recovery)
    true
    (out.Sorting_attack.mope_recovery < 0.05)

let () =
  Alcotest.run "attack"
    [ ( "largest_empty_arc",
        [ Alcotest.test_case "simple" `Quick test_arc_simple;
          Alcotest.test_case "wrapping" `Quick test_arc_wrapping;
          Alcotest.test_case "single point" `Quick test_arc_single_point;
          Alcotest.test_case "duplicates" `Quick test_arc_duplicates_ignored;
          Alcotest.test_case "empty raises" `Quick test_arc_empty_raises ] );
      ( "gap_attack",
        [ Alcotest.test_case "succeeds on naive MOPE" `Slow test_gap_attack_on_naive;
          Alcotest.test_case "neutralized by QueryU" `Slow
            test_gap_attack_neutralized_by_queryu;
          Alcotest.test_case "improves with queries" `Slow
            test_gap_attack_more_queries_help ] );
      ( "wow",
        [ Alcotest.test_case "naive location leaks" `Slow test_wow_location_naive_leaks;
          Alcotest.test_case "QueryU location at Thm 3 bound" `Slow
            test_wow_location_queryu_at_bound;
          Alcotest.test_case "QueryP location within Thm 5 bound" `Slow
            test_wow_location_queryp_within_bound;
          Alcotest.test_case "distance leaks everywhere (Thm 4)" `Slow
            test_wow_distance_leaks_everywhere;
          Alcotest.test_case "bound formulas" `Quick test_wow_bounds_shape ] );
      ( "sorting",
        [ Alcotest.test_case "rank pairing" `Quick test_sorting_attack_pairs;
          Alcotest.test_case "dense column experiment" `Slow
            test_sorting_attack_experiment ] );
      ( "wow_baseline",
        [ Alcotest.test_case "Theorems 1-2 shape" `Slow test_baseline_rows ] );
      ( "frequency",
        [ Alcotest.test_case "rank matching" `Quick test_frequency_attack_matching;
          Alcotest.test_case "skewed DET column falls" `Slow
            test_frequency_attack_skewed_column;
          Alcotest.test_case "uniform DET column resists" `Slow
            test_frequency_attack_uniform_column ] );
      ( "periodic_shift",
        [ Alcotest.test_case "recovers offset class only" `Slow
            test_periodic_shift_recovers_class;
          Alcotest.test_case "validates rho" `Quick test_periodic_shift_validates_rho ] ) ]

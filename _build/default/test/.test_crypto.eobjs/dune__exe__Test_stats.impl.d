test/test_stats.ml: Alcotest Array Distributions Float Fun Gen Histogram Hypergeometric Int Int64 List Mope_stats Printf QCheck QCheck_alcotest Rng Special Summary

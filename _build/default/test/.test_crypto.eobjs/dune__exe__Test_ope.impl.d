test/test_ope.ml: Alcotest Fun Hashtbl Int List Modular Mope Mope_ope Ope Printf QCheck QCheck_alcotest

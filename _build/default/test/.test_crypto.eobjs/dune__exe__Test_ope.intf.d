test/test_ope.mli:

test/test_crypto.ml: Alcotest Array Char Drbg Feistel Float Hmac Int Int64 List Mope_crypto Mope_stats Printf QCheck QCheck_alcotest Sha256 String

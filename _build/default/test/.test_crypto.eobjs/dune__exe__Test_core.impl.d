test/test_core.ml: Adaptive Alcotest Array Completion Cost Gen Histogram Int List Make_queries Mope_core Mope_ope Mope_stats Pacer Printf QCheck QCheck_alcotest Query_model Rng Scheduler Summary

test/test_attack.ml: Alcotest Array Distributions Frequency Gap_attack Histogram Mope_attack Mope_core Mope_stats Periodic_shift Printf Scheduler Sorting_attack Wow Wow_baseline

(* Tests for lib/stats: RNG, histograms, special functions, distributions,
   the exact hypergeometric sampler, and summary statistics. *)

open Mope_stats

(* ------------------------------------------------------------------ *)
(* Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.int64 a) (Rng.int64 b)
  done

let test_rng_int_range =
  QCheck.Test.make ~name:"rng int in range" ~count:500
    QCheck.(pair (int_range 1 1_000_000) small_int)
    (fun (n, seed) ->
      let rng = Rng.create (Int64.of_int seed) in
      let x = Rng.int rng n in
      x >= 0 && x < n)

let test_rng_uniformity () =
  let rng = Rng.create 7L in
  let counts = Array.make 16 0 in
  for _ = 1 to 32000 do
    let x = Rng.int rng 16 in
    counts.(x) <- counts.(x) + 1
  done;
  let chi = Summary.chi_square_uniform counts in
  (* 15 dof, p=0.001 critical 37.70 *)
  Alcotest.(check bool) (Printf.sprintf "chi=%f" chi) true (chi < 37.70)

let test_rng_shuffle_permutes () =
  let rng = Rng.create 3L in
  let arr = Array.init 100 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 Fun.id) sorted

let test_rng_float_range () =
  let rng = Rng.create 11L in
  for _ = 1 to 10000 do
    let f = Rng.float rng in
    if f < 0.0 || f >= 1.0 then Alcotest.fail "float out of [0,1)"
  done

(* ------------------------------------------------------------------ *)
(* Histogram *)

let test_histogram_of_counts () =
  let h = Histogram.of_counts [| 1; 3; 0; 4 |] in
  Alcotest.(check int) "size" 4 (Histogram.size h);
  Alcotest.(check (float 1e-12)) "p0" 0.125 (Histogram.prob h 0);
  Alcotest.(check (float 1e-12)) "p1" 0.375 (Histogram.prob h 1);
  Alcotest.(check (float 1e-12)) "p2" 0.0 (Histogram.prob h 2);
  Alcotest.(check (float 1e-12)) "max" 0.5 (Histogram.max_prob h);
  Alcotest.(check int) "argmax" 3 (Histogram.argmax h)

let test_histogram_rejects_bad_input () =
  Alcotest.check_raises "negative count"
    (Invalid_argument "Histogram.of_counts: negative") (fun () ->
      ignore (Histogram.of_counts [| 1; -1 |]));
  Alcotest.check_raises "empty" (Invalid_argument "Histogram: empty domain")
    (fun () -> ignore (Histogram.of_counts [||]));
  Alcotest.check_raises "zero mass" (Invalid_argument "Histogram: zero total mass")
    (fun () -> ignore (Histogram.of_counts [| 0; 0 |]));
  Alcotest.check_raises "mass not 1" (Invalid_argument "Histogram.of_pmf: mass not 1")
    (fun () -> ignore (Histogram.of_pmf [| 0.4; 0.4 |]))

let test_histogram_sample_inversion () =
  (* For pmf (0.25, 0.5, 0.25): cdf = (0.25, 0.75, 1.0). *)
  let h = Histogram.of_pmf [| 0.25; 0.5; 0.25 |] in
  Alcotest.(check int) "u=0" 0 (Histogram.sample h ~u:0.0);
  Alcotest.(check int) "u just below .25" 0 (Histogram.sample h ~u:0.2499);
  Alcotest.(check int) "u=.25" 1 (Histogram.sample h ~u:0.25);
  Alcotest.(check int) "u=.5" 1 (Histogram.sample h ~u:0.5);
  Alcotest.(check int) "u=.75" 2 (Histogram.sample h ~u:0.75);
  Alcotest.(check int) "u->1" 2 (Histogram.sample h ~u:0.999999)

let test_histogram_sample_skips_zero_mass =
  QCheck.Test.make ~name:"sample never returns zero-mass element" ~count:300
    QCheck.(pair (list_of_size (Gen.int_range 2 20) (int_range 0 5)) (float_range 0.0 0.999))
    (fun (counts, u) ->
      QCheck.assume (List.exists (fun c -> c > 0) counts);
      let h = Histogram.of_counts (Array.of_list counts) in
      Histogram.prob h (Histogram.sample h ~u) > 0.0)

let test_histogram_empirical_matches_pmf () =
  let h = Histogram.of_pmf [| 0.1; 0.2; 0.3; 0.4 |] in
  let rng = Rng.create 5L in
  let counts = Array.make 4 0 in
  let n = 40000 in
  for _ = 1 to n do
    let i = Histogram.sample h ~u:(Rng.float rng) in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      let freq = float_of_int c /. float_of_int n in
      Alcotest.(check (float 0.01))
        (Printf.sprintf "freq %d" i)
        (Histogram.prob h i) freq)
    counts

let test_histogram_mix () =
  let a = Histogram.of_pmf [| 1.0; 0.0 |] and b = Histogram.of_pmf [| 0.0; 1.0 |] in
  let m = Histogram.mix 0.25 a b in
  Alcotest.(check (float 1e-12)) "mix0" 0.25 (Histogram.prob m 0);
  Alcotest.(check (float 1e-12)) "mix1" 0.75 (Histogram.prob m 1)

let test_histogram_total_variation () =
  let a = Histogram.of_pmf [| 1.0; 0.0 |] and b = Histogram.of_pmf [| 0.0; 1.0 |] in
  Alcotest.(check (float 1e-12)) "disjoint" 1.0 (Histogram.total_variation a b);
  Alcotest.(check (float 1e-12)) "self" 0.0 (Histogram.total_variation a a)

let test_histogram_periodic_eta () =
  let h = Histogram.of_pmf [| 0.1; 0.2; 0.05; 0.15; 0.3; 0.2 |] in
  let eta, mean = Histogram.periodic_eta h ~rho:2 in
  (* classes mod 2: evens {0.1,0.05,0.3} max 0.3; odds {0.2,0.15,0.2} max 0.2 *)
  Alcotest.(check (float 1e-12)) "eta0" 0.3 eta.(0);
  Alcotest.(check (float 1e-12)) "eta1" 0.2 eta.(1);
  Alcotest.(check (float 1e-12)) "mean" 0.25 mean

let test_histogram_shift =
  QCheck.Test.make ~name:"shift moves mass correctly" ~count:200
    QCheck.(pair (list_of_size (Gen.int_range 1 12) (int_range 0 9)) int)
    (fun (counts, j) ->
      QCheck.assume (List.exists (fun c -> c > 0) counts);
      let h = Histogram.of_counts (Array.of_list counts) in
      let m = Histogram.size h in
      let s = Histogram.shift h j in
      let ok = ref true in
      for i = 0 to m - 1 do
        let expected = Histogram.prob h (((i - j) mod m + m) mod m) in
        if Float.abs (Histogram.prob s i -. expected) > 1e-12 then ok := false
      done;
      !ok)

let test_histogram_is_periodic () =
  let p = Histogram.of_pmf [| 0.2; 0.3; 0.2; 0.3 |] in
  Alcotest.(check bool) "periodic rho=2" true (Histogram.is_periodic p ~rho:2 ~eps:1e-12);
  let np = Histogram.of_pmf [| 0.2; 0.3; 0.25; 0.25 |] in
  Alcotest.(check bool) "not periodic" false (Histogram.is_periodic np ~rho:2 ~eps:1e-12)

(* ------------------------------------------------------------------ *)
(* Special functions *)

let test_ln_gamma_known () =
  (* Γ(1)=1, Γ(2)=1, Γ(5)=24, Γ(0.5)=√π *)
  Alcotest.(check (float 1e-10)) "G(1)" 0.0 (Special.ln_gamma 1.0);
  Alcotest.(check (float 1e-10)) "G(2)" 0.0 (Special.ln_gamma 2.0);
  Alcotest.(check (float 1e-9)) "G(5)" (log 24.0) (Special.ln_gamma 5.0);
  Alcotest.(check (float 1e-9)) "G(0.5)" (0.5 *. log Float.pi) (Special.ln_gamma 0.5)

let test_ln_factorial_consistent =
  QCheck.Test.make ~name:"ln_factorial = ln_gamma(n+1)" ~count:100
    QCheck.(int_range 0 500)
    (fun n ->
      Float.abs (Special.ln_factorial n -. Special.ln_gamma (float_of_int n +. 1.0))
      < 1e-8 *. Float.max 1.0 (Special.ln_factorial n))

let test_ln_choose () =
  Alcotest.(check (float 1e-9)) "C(5,2)" (log 10.0) (Special.ln_choose 5 2);
  Alcotest.(check (float 1e-6)) "C(50,25)" (log 126410606437752.0)
    (Special.ln_choose 50 25);
  Alcotest.(check (float 0.0)) "out of range" neg_infinity (Special.ln_choose 5 6)

let test_erf_known () =
  Alcotest.(check (float 1e-6)) "erf 0" 0.0 (Special.erf 0.0);
  Alcotest.(check (float 1e-4)) "erf 1" 0.8427007 (Special.erf 1.0);
  Alcotest.(check (float 1e-4)) "erf -1" (-0.8427007) (Special.erf (-1.0));
  Alcotest.(check (float 1e-5)) "erf 3" 0.9999779 (Special.erf 3.0)

let test_inverse_normal_roundtrip =
  QCheck.Test.make ~name:"normal_cdf (inverse_normal_cdf p) = p" ~count:200
    QCheck.(float_range 0.001 0.999)
    (fun p ->
      let x = Special.inverse_normal_cdf p in
      Float.abs (Special.normal_cdf ~mean:0.0 ~sigma:1.0 x -. p) < 1e-4)

(* ------------------------------------------------------------------ *)
(* Distributions *)

let test_zipf_normalized () =
  let pmf = Distributions.zipf_pmf ~size:1000 ~s:1.0 in
  let total = Array.fold_left ( +. ) 0.0 pmf in
  Alcotest.(check (float 1e-9)) "mass 1" 1.0 total;
  Alcotest.(check bool) "monotone decreasing" true
    (Array.for_all Fun.id (Array.init 999 (fun i -> pmf.(i) >= pmf.(i + 1))))

let test_geometric_inversion () =
  (* Empirical mean of Geom(p) (failures before success) is (1-p)/p. *)
  let rng = Rng.create 17L in
  let p = 0.2 in
  let n = 20000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Distributions.sample_geometric rng ~p
  done;
  let mean = float_of_int !sum /. float_of_int n in
  Alcotest.(check (float 0.15)) "mean" ((1.0 -. p) /. p) mean

let test_geometric_edge_cases () =
  Alcotest.(check int) "p=1 gives 0" 0 (Distributions.geometric ~u:0.5 ~p:1.0);
  Alcotest.(check int) "u=0 gives 0" 0 (Distributions.geometric ~u:0.0 ~p:0.3);
  Alcotest.check_raises "p=0 invalid"
    (Invalid_argument "Distributions.geometric: p must be positive") (fun () ->
      ignore (Distributions.geometric ~u:0.5 ~p:0.0))

let test_geometric_matches_bernoulli_loop () =
  (* The closed form must agree with counting tails of the Bernoulli coin in
     distribution: compare empirical pmfs. *)
  let p = 0.35 and n = 30000 in
  let rng1 = Rng.create 5L and rng2 = Rng.create 99L in
  let direct = Array.make 30 0 and loop = Array.make 30 0 in
  for _ = 1 to n do
    let g = Distributions.sample_geometric rng1 ~p in
    if g < 30 then direct.(g) <- direct.(g) + 1;
    let rec count acc =
      if Distributions.sample_bernoulli rng2 ~p then acc else count (acc + 1)
    in
    let l = count 0 in
    if l < 30 then loop.(l) <- loop.(l) + 1
  done;
  for i = 0 to 6 do
    let fd = float_of_int direct.(i) /. float_of_int n in
    let fl = float_of_int loop.(i) /. float_of_int n in
    Alcotest.(check (float 0.015)) (Printf.sprintf "pmf at %d" i) fl fd
  done

let test_normal_sampling_moments () =
  let rng = Rng.create 23L in
  let n = 30000 in
  let xs = Array.init n (fun _ -> Distributions.sample_normal rng ~mean:5.0 ~sigma:2.0) in
  Alcotest.(check (float 0.07)) "mean" 5.0 (Summary.mean xs);
  Alcotest.(check (float 0.1)) "stddev" 2.0 (Summary.stddev xs)

(* ------------------------------------------------------------------ *)
(* Hypergeometric *)

let hg_params =
  QCheck.Gen.(
    int_range 1 300 >>= fun population ->
    int_range 0 population >>= fun successes ->
    int_range 0 population >>= fun draws ->
    return (population, successes, draws))

let arbitrary_hg =
  QCheck.make hg_params ~print:(fun (n, k, d) -> Printf.sprintf "N=%d K=%d n=%d" n k d)

let test_hg_support =
  QCheck.Test.make ~name:"sample within support" ~count:1000
    (QCheck.pair arbitrary_hg (QCheck.float_range 0.0 0.9999))
    (fun ((population, successes, draws), u) ->
      let lo, hi = Hypergeometric.support ~population ~successes ~draws in
      let x = Hypergeometric.sample ~population ~successes ~draws ~u in
      x >= lo && x <= hi)

let test_hg_deterministic =
  QCheck.Test.make ~name:"same u gives same sample" ~count:300
    (QCheck.pair arbitrary_hg (QCheck.float_range 0.0 0.9999))
    (fun ((population, successes, draws), u) ->
      Hypergeometric.sample ~population ~successes ~draws ~u
      = Hypergeometric.sample ~population ~successes ~draws ~u)

let test_hg_degenerate () =
  Alcotest.(check int) "draws=0" 0
    (Hypergeometric.sample ~population:10 ~successes:5 ~draws:0 ~u:0.7);
  Alcotest.(check int) "successes=0" 0
    (Hypergeometric.sample ~population:10 ~successes:0 ~draws:5 ~u:0.7);
  Alcotest.(check int) "all successes" 5
    (Hypergeometric.sample ~population:10 ~successes:10 ~draws:5 ~u:0.7);
  Alcotest.(check int) "draw everything" 4
    (Hypergeometric.sample ~population:10 ~successes:4 ~draws:10 ~u:0.7)

let test_hg_pmf_sums_to_one =
  QCheck.Test.make ~name:"pmf sums to 1 over support" ~count:100 arbitrary_hg
    (fun (population, successes, draws) ->
      let lo, hi = Hypergeometric.support ~population ~successes ~draws in
      let total = ref 0.0 in
      for k = lo to hi do
        total := !total +. exp (Hypergeometric.log_pmf ~population ~successes ~draws k)
      done;
      Float.abs (!total -. 1.0) < 1e-6)

let test_hg_empirical_mean () =
  let population = 1000 and successes = 300 and draws = 200 in
  let rng = Rng.create 31L in
  let n = 5000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum :=
      !sum
      + Hypergeometric.sample ~population ~successes ~draws ~u:(Rng.float rng)
  done;
  let mean = float_of_int !sum /. float_of_int n in
  let expected = Hypergeometric.mean ~population ~successes ~draws in
  Alcotest.(check (float 0.5)) "mean" expected mean

let test_hg_exact_distribution () =
  (* Small case: empirical frequencies vs exact pmf. *)
  let population = 20 and successes = 8 and draws = 10 in
  let rng = Rng.create 37L in
  let n = 60000 in
  let counts = Array.make (draws + 1) 0 in
  for _ = 1 to n do
    let x = Hypergeometric.sample ~population ~successes ~draws ~u:(Rng.float rng) in
    counts.(x) <- counts.(x) + 1
  done;
  let lo, hi = Hypergeometric.support ~population ~successes ~draws in
  for k = lo to hi do
    let expected = exp (Hypergeometric.log_pmf ~population ~successes ~draws k) in
    let freq = float_of_int counts.(k) /. float_of_int n in
    Alcotest.(check (float 0.012)) (Printf.sprintf "pmf %d" k) expected freq
  done

let test_hg_binomial_approx_support =
  QCheck.Test.make ~name:"binomial approximation stays in support" ~count:300
    (QCheck.pair arbitrary_hg (QCheck.float_range 0.0 0.9999))
    (fun ((population, successes, draws), u) ->
      let lo, hi = Hypergeometric.support ~population ~successes ~draws in
      let x = Hypergeometric.sample_binomial_approx ~population ~successes ~draws ~u in
      x >= lo && x <= hi)

let test_hg_invalid () =
  Alcotest.check_raises "successes > population"
    (Invalid_argument "Hypergeometric: invalid parameters") (fun () ->
      ignore (Hypergeometric.support ~population:5 ~successes:6 ~draws:1))

(* ------------------------------------------------------------------ *)
(* Summary *)

let test_summary_basic () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  Alcotest.(check (float 1e-12)) "mean" 2.5 (Summary.mean xs);
  Alcotest.(check (float 1e-12)) "variance" 1.25 (Summary.variance xs);
  Alcotest.(check (float 1e-12)) "median" 2.5 (Summary.median xs);
  Alcotest.(check (float 1e-12)) "p0" 1.0 (Summary.percentile xs 0.0);
  Alcotest.(check (float 1e-12)) "p100" 4.0 (Summary.percentile xs 100.0);
  Alcotest.(check (float 1e-12)) "empty mean" 0.0 (Summary.mean [||])

let test_summary_chi_square () =
  Alcotest.(check (float 1e-12)) "uniform zero" 0.0
    (Summary.chi_square_uniform [| 5; 5; 5; 5 |]);
  let chi = Summary.chi_square ~observed:[| 10; 0 |] ~expected:[| 5.0; 5.0 |] in
  Alcotest.(check (float 1e-12)) "skew" 10.0 chi


let test_ks_statistic () =
  Alcotest.(check (float 1e-12)) "perfect match" 0.0
    (Summary.ks_statistic ~observed:[| 10; 10; 10 |] ~expected:[| 1.0; 1.0; 1.0 |]);
  let ks =
    Summary.ks_statistic ~observed:[| 30; 0; 0 |] ~expected:[| 1.0; 1.0; 1.0 |]
  in
  (* All mass first: CDF gap peaks at 1 - 1/3. *)
  Alcotest.(check (float 1e-9)) "concentrated" (2.0 /. 3.0) ks;
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Summary.ks_statistic: length mismatch") (fun () ->
      ignore (Summary.ks_statistic ~observed:[| 1 |] ~expected:[| 1.0; 1.0 |]))

let test_ks_uniform_sampling () =
  let rng = Rng.create 3L in
  let counts = Array.make 50 0 in
  for _ = 1 to 20000 do
    let i = Rng.int rng 50 in
    counts.(i) <- counts.(i) + 1
  done;
  let ks = Summary.ks_statistic ~observed:counts ~expected:(Array.make 50 1.0) in
  (* ~1.63/sqrt(20000) = 0.0115 at p=0.01. *)
  Alcotest.(check bool) (Printf.sprintf "ks=%f" ks) true (ks < 0.015)

let () =
  Alcotest.run "stats"
    [ ( "rng",
        [ Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          QCheck_alcotest.to_alcotest test_rng_int_range;
          Alcotest.test_case "uniformity" `Quick test_rng_uniformity;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutes;
          Alcotest.test_case "float range" `Quick test_rng_float_range ] );
      ( "histogram",
        [ Alcotest.test_case "of_counts" `Quick test_histogram_of_counts;
          Alcotest.test_case "rejects bad input" `Quick test_histogram_rejects_bad_input;
          Alcotest.test_case "sample inversion" `Quick test_histogram_sample_inversion;
          QCheck_alcotest.to_alcotest test_histogram_sample_skips_zero_mass;
          Alcotest.test_case "empirical matches pmf" `Quick
            test_histogram_empirical_matches_pmf;
          Alcotest.test_case "mix" `Quick test_histogram_mix;
          Alcotest.test_case "total variation" `Quick test_histogram_total_variation;
          Alcotest.test_case "periodic eta" `Quick test_histogram_periodic_eta;
          QCheck_alcotest.to_alcotest test_histogram_shift;
          Alcotest.test_case "is_periodic" `Quick test_histogram_is_periodic ] );
      ( "special",
        [ Alcotest.test_case "ln_gamma known values" `Quick test_ln_gamma_known;
          QCheck_alcotest.to_alcotest test_ln_factorial_consistent;
          Alcotest.test_case "ln_choose" `Quick test_ln_choose;
          Alcotest.test_case "erf" `Quick test_erf_known;
          QCheck_alcotest.to_alcotest test_inverse_normal_roundtrip ] );
      ( "distributions",
        [ Alcotest.test_case "zipf" `Quick test_zipf_normalized;
          Alcotest.test_case "geometric mean" `Quick test_geometric_inversion;
          Alcotest.test_case "geometric edges" `Quick test_geometric_edge_cases;
          Alcotest.test_case "geometric = bernoulli loop" `Quick
            test_geometric_matches_bernoulli_loop;
          Alcotest.test_case "normal moments" `Quick test_normal_sampling_moments ] );
      ( "hypergeometric",
        [ QCheck_alcotest.to_alcotest test_hg_support;
          QCheck_alcotest.to_alcotest test_hg_deterministic;
          Alcotest.test_case "degenerate cases" `Quick test_hg_degenerate;
          QCheck_alcotest.to_alcotest test_hg_pmf_sums_to_one;
          Alcotest.test_case "empirical mean" `Quick test_hg_empirical_mean;
          Alcotest.test_case "exact distribution" `Slow test_hg_exact_distribution;
          QCheck_alcotest.to_alcotest test_hg_binomial_approx_support;
          Alcotest.test_case "invalid params" `Quick test_hg_invalid ] );
      ( "summary",
        [ Alcotest.test_case "basics" `Quick test_summary_basic;
          Alcotest.test_case "chi-square" `Quick test_summary_chi_square;
          Alcotest.test_case "ks statistic" `Quick test_ks_statistic;
          Alcotest.test_case "ks on uniform sampling" `Quick test_ks_uniform_sampling ] ) ]

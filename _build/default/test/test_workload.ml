(* Tests for lib/workload: datasets, query generation, the cost-experiment
   driver, and the TPC-H generator/templates. *)

open Mope_stats
open Mope_workload

(* ------------------------------------------------------------------ *)
(* Datasets *)

let test_dataset_shapes () =
  List.iter
    (fun d ->
      Alcotest.(check int)
        (d.Datasets.name ^ " histogram size")
        d.Datasets.domain
        (Histogram.size d.Datasets.distribution);
      let pmf = Histogram.pmf d.Datasets.distribution in
      let total = Array.fold_left ( +. ) 0.0 pmf in
      Alcotest.(check (float 1e-9)) (d.Datasets.name ^ " mass") 1.0 total)
    (Datasets.all ())

let test_dataset_domains () =
  Alcotest.(check int) "uniform" 10000 (Datasets.uniform ()).Datasets.domain;
  Alcotest.(check int) "zipf" 10000 (Datasets.zipf ()).Datasets.domain;
  Alcotest.(check int) "adult" 74 (Datasets.adult ()).Datasets.domain;
  Alcotest.(check int) "covertype" 2000 (Datasets.covertype ()).Datasets.domain;
  Alcotest.(check int) "sanfran" 10000 (Datasets.sanfran ()).Datasets.domain

let test_dataset_skew () =
  (* Zipf/SanFran must be visibly non-uniform; Uniform must be flat. *)
  let tv d = Histogram.total_variation d.Datasets.distribution (Histogram.uniform d.Datasets.domain) in
  Alcotest.(check (float 1e-9)) "uniform flat" 0.0 (tv (Datasets.uniform ()));
  Alcotest.(check bool) "zipf skewed" true (tv (Datasets.zipf ()) > 0.3);
  Alcotest.(check bool) "sanfran skewed" true (tv (Datasets.sanfran ()) > 0.3)

let test_dataset_padding () =
  let adult = Datasets.adult () in
  let padded = Datasets.pad_to_multiple adult ~rho:10 in
  Alcotest.(check int) "padded to 80" 80 padded.Datasets.domain;
  Alcotest.(check (float 1e-12)) "pad has no mass" 0.0
    (Histogram.prob padded.Datasets.distribution 79);
  (* Mass preserved on the original domain. *)
  Alcotest.(check (float 1e-9)) "original mass kept"
    (Histogram.prob adult.Datasets.distribution 0)
    (Histogram.prob padded.Datasets.distribution 0);
  let nop = Datasets.pad_to_multiple adult ~rho:2 in
  Alcotest.(check int) "74 already divisible by 2" 74 nop.Datasets.domain

(* ------------------------------------------------------------------ *)
(* Query_gen *)

let test_query_lengths_valid =
  QCheck.Test.make ~name:"generated query lengths in [1, m]" ~count:500
    QCheck.(pair (int_range 1 30) small_int)
    (fun (sigma, seed) ->
      let rng = Rng.create (Int64.of_int seed) in
      let len = Query_gen.sample_length rng ~sigma:(float_of_int sigma) ~m:100 in
      len >= 1 && len <= 100)

let test_query_centers_follow_data () =
  (* With a point-mass data distribution, all queries start there. *)
  let data = Histogram.point ~size:100 42 in
  let rng = Rng.create 5L in
  for _ = 1 to 100 do
    let q = Query_gen.sample_query rng ~data ~sigma:4.0 in
    Alcotest.(check int) "start" 42 q.Mope_core.Query_model.lo
  done

let test_start_distribution_mc_vs_exact () =
  let data = Distributions.zipf ~size:200 ~s:1.0 in
  let exact = Query_gen.start_distribution_exact ~data ~sigma:5.0 ~k:10 in
  let rng = Rng.create 6L in
  let mc = Query_gen.start_distribution rng ~data ~sigma:5.0 ~k:10 ~samples:120_000 in
  let tv = Histogram.total_variation exact mc in
  Alcotest.(check bool) (Printf.sprintf "tv=%f" tv) true (tv < 0.03)

let test_generate_count () =
  let data = Histogram.uniform 50 in
  let rng = Rng.create 7L in
  let qs = Query_gen.generate rng ~data { Query_gen.sigma = 5.0; n_queries = 37 } in
  Alcotest.(check int) "count" 37 (List.length qs)

(* ------------------------------------------------------------------ *)
(* Cost_experiment *)

let test_cost_experiment_uniform_mode_sane () =
  let data = Datasets.adult () in
  let config =
    { Cost_experiment.default with
      Cost_experiment.n_queries = 300;
      n_records = 20_000;
      q_samples = 50_000;
      k = 10;
      sigma = 5.0 }
  in
  let out = Cost_experiment.run ~data config in
  Alcotest.(check bool) "bandwidth positive" true (out.Cost_experiment.bandwidth > 0.0);
  Alcotest.(check bool) "requests >= 1" true (out.Cost_experiment.requests >= 1.0);
  Alcotest.(check bool) "alpha in (0,1]" true
    (out.Cost_experiment.alpha > 0.0 && out.Cost_experiment.alpha <= 1.0);
  (* Empirical fake/real ratio should be near (1-alpha)/alpha. *)
  let t = out.Cost_experiment.tally in
  let empirical =
    float_of_int t.Mope_core.Cost.fake_queries
    /. float_of_int t.Mope_core.Cost.transformed_queries
  in
  let expected = out.Cost_experiment.expected_fakes in
  Alcotest.(check bool)
    (Printf.sprintf "fakes %.2f vs expected %.2f" empirical expected)
    true
    (Float.abs (empirical -. expected) /. Float.max 1.0 expected < 0.25)

let test_cost_experiment_periodic_cheaper () =
  let data = Datasets.sanfran () in
  let base =
    { Cost_experiment.default with
      Cost_experiment.n_queries = 200;
      n_records = 20_000;
      q_samples = 50_000;
      sigma = 10.0 }
  in
  let uniform = Cost_experiment.run ~data base in
  let periodic =
    Cost_experiment.run ~data { base with Cost_experiment.mode = Mope_core.Scheduler.Periodic 100 }
  in
  Alcotest.(check bool)
    (Printf.sprintf "periodic requests %.1f < uniform %.1f"
       periodic.Cost_experiment.requests uniform.Cost_experiment.requests)
    true
    (periodic.Cost_experiment.requests < uniform.Cost_experiment.requests)

(* ------------------------------------------------------------------ *)
(* Tpch *)

let tpch_db = lazy (
  let db = Mope_db.Database.create () in
  let sizes = Tpch.load db ~sf:0.001 ~seed:3L in
  (db, sizes))

let test_tpch_sizes () =
  let _, sizes = Lazy.force tpch_db in
  Alcotest.(check int) "orders" 1500 sizes.Tpch.orders;
  Alcotest.(check int) "parts" 200 sizes.Tpch.parts;
  Alcotest.(check bool) "lineitems 1..7 per order" true
    (sizes.Tpch.lineitems >= 1500 && sizes.Tpch.lineitems <= 10500)

let test_tpch_dates_in_window () =
  let db, _ = Lazy.force tpch_db in
  let r =
    Mope_db.Database.query db "SELECT min(l_shipdate), max(l_shipdate) FROM lineitem"
  in
  match r.Mope_db.Exec.rows with
  | [ [| Mope_db.Value.Date lo; Mope_db.Value.Date hi |] ] ->
    Alcotest.(check bool) "min in window" true (lo >= Tpch.window_lo);
    Alcotest.(check bool) "max in window" true (hi <= Tpch.window_hi)
  | _ -> Alcotest.fail "unexpected shape"

let test_tpch_receipt_after_ship () =
  let db, _ = Lazy.force tpch_db in
  let r =
    Mope_db.Database.query db "SELECT count(*) FROM lineitem WHERE l_receiptdate <= l_shipdate"
  in
  match r.Mope_db.Exec.rows with
  | [ [| Mope_db.Value.Int 0 |] ] -> ()
  | _ -> Alcotest.fail "receipt date must be after ship date"

let test_tpch_domain_mapping () =
  Alcotest.(check int) "domain size" 2557 Tpch.date_domain;
  Alcotest.(check int) "lo maps to 0" 0 (Tpch.day_to_plain Tpch.window_lo);
  Alcotest.(check int) "hi maps to M-1" 2556 (Tpch.day_to_plain Tpch.window_hi);
  Alcotest.(check int) "roundtrip" Tpch.window_hi (Tpch.plain_to_day 2556);
  Alcotest.check_raises "outside window"
    (Invalid_argument "Tpch.day_to_plain: date outside the 1992-1998 window")
    (fun () -> ignore (Tpch.day_to_plain (Tpch.window_hi + 1)))

(* ------------------------------------------------------------------ *)
(* Tpch_queries *)

let test_templates_parse_and_run () =
  let db, _ = Lazy.force tpch_db in
  let rng = Rng.create 9L in
  List.iter
    (fun template ->
      let inst = Tpch_queries.random_instance rng template in
      (* Every generated statement must parse and execute. *)
      let r = Mope_db.Database.query db inst.Tpch_queries.sql in
      Alcotest.(check bool)
        (Tpch_queries.template_name template ^ " returns rows or empty")
        true
        (List.length r.Mope_db.Exec.rows >= 0))
    [ Tpch_queries.Q4; Tpch_queries.Q6; Tpch_queries.Q14 ]

let test_template_date_ranges () =
  let rng = Rng.create 10L in
  for _ = 1 to 50 do
    let q6 = Tpch_queries.random_instance rng Tpch_queries.Q6 in
    let len = q6.Tpch_queries.date_hi - q6.Tpch_queries.date_lo + 1 in
    Alcotest.(check bool) "Q6 is one year" true (len = 365 || len = 366);
    let q14 = Tpch_queries.random_instance rng Tpch_queries.Q14 in
    let len = q14.Tpch_queries.date_hi - q14.Tpch_queries.date_lo + 1 in
    Alcotest.(check bool) "Q14 is one month" true (len >= 28 && len <= 31);
    let q4 = Tpch_queries.random_instance rng Tpch_queries.Q4 in
    let len = q4.Tpch_queries.date_hi - q4.Tpch_queries.date_lo + 1 in
    Alcotest.(check bool) "Q4 is one quarter" true (len >= 90 && len <= 92)
  done

let test_template_start_domains () =
  Alcotest.(check int) "Q6 starts" 5 (List.length (Tpch_queries.start_domain Tpch_queries.Q6));
  Alcotest.(check int) "Q14 starts" 60 (List.length (Tpch_queries.start_domain Tpch_queries.Q14));
  Alcotest.(check int) "Q4 starts" 20 (List.length (Tpch_queries.start_domain Tpch_queries.Q4))

let test_template_start_distribution_padded () =
  let h = Tpch_queries.start_distribution ~domain:2580 Tpch_queries.Q14 in
  Alcotest.(check int) "padded size" 2580 (Histogram.size h);
  Alcotest.(check (float 1e-12)) "uniform over 60 starts" (1.0 /. 60.0)
    (Histogram.max_prob h)

let test_template_lengths_cover_ranges () =
  (* fixed_length k >= every instance's range length, so one piece suffices. *)
  let rng = Rng.create 11L in
  List.iter
    (fun template ->
      let k = Tpch_queries.fixed_length template in
      for _ = 1 to 30 do
        let inst = Tpch_queries.random_instance rng template in
        let len = inst.Tpch_queries.date_hi - inst.Tpch_queries.date_lo + 1 in
        Alcotest.(check bool) "k covers instance" true (len <= k)
      done)
    [ Tpch_queries.Q4; Tpch_queries.Q6; Tpch_queries.Q14 ]


let test_cost_experiment_deterministic () =
  let data = Datasets.adult () in
  let config =
    { Cost_experiment.default with
      Cost_experiment.n_queries = 100; n_records = 5000; q_samples = 10_000 }
  in
  let a = Cost_experiment.run ~data config and b = Cost_experiment.run ~data config in
  Alcotest.(check (float 0.0)) "same bandwidth" a.Cost_experiment.bandwidth
    b.Cost_experiment.bandwidth;
  Alcotest.(check (float 0.0)) "same requests" a.Cost_experiment.requests
    b.Cost_experiment.requests

let test_q6_selectivity () =
  (* One year of l_shipdate covers roughly 1/7 of the 1992-1998+121d span. *)
  let db, sizes = Lazy.force tpch_db in
  let r =
    Mope_db.Database.query db
      "SELECT count(*) FROM lineitem WHERE l_shipdate >= DATE '1994-01-01' AND \
       l_shipdate <= DATE '1994-12-31'"
  in
  match r.Mope_db.Exec.rows with
  | [ [| Mope_db.Value.Int n |] ] ->
    let frac = float_of_int n /. float_of_int sizes.Tpch.lineitems in
    Alcotest.(check bool) (Printf.sprintf "fraction %.3f" frac) true
      (frac > 0.10 && frac < 0.20)
  | _ -> Alcotest.fail "shape"

let test_tpch_deterministic () =
  let db2 = Mope_db.Database.create () in
  let sizes2 = Tpch.load db2 ~sf:0.001 ~seed:3L in
  let _, sizes = Lazy.force tpch_db in
  Alcotest.(check int) "same lineitem count" sizes.Tpch.lineitems sizes2.Tpch.lineitems;
  let q = "SELECT sum(l_quantity) FROM lineitem" in
  let db, _ = Lazy.force tpch_db in
  Alcotest.(check bool) "same content" true
    ((Mope_db.Database.query db q).Mope_db.Exec.rows
    = (Mope_db.Database.query db2 q).Mope_db.Exec.rows)


let test_q1_runs_and_is_consistent () =
  let db, _ = Lazy.force tpch_db in
  let r = Mope_db.Database.query db Tpch_queries.q1_sql in
  Alcotest.(check bool) "at most 4 groups" true
    (List.length r.Mope_db.Exec.rows >= 1 && List.length r.Mope_db.Exec.rows <= 4);
  (* The group counts must partition the filtered rows. *)
  let total_from_groups =
    List.fold_left
      (fun acc row ->
        match row.(9) with Mope_db.Value.Int n -> acc + n | _ -> acc)
      0 r.Mope_db.Exec.rows
  in
  let filtered =
    match
      (Mope_db.Database.query db
         "SELECT count(*) FROM lineitem WHERE l_shipdate <= DATE '1998-09-02'")
        .Mope_db.Exec.rows
    with
    | [ [| Mope_db.Value.Int n |] ] -> n
    | _ -> Alcotest.fail "shape"
  in
  Alcotest.(check int) "groups partition rows" filtered total_from_groups;
  (* avg = sum / count within each group. *)
  List.iter
    (fun row ->
      match (row.(2), row.(6), row.(9)) with
      | Mope_db.Value.Int sum_qty, Mope_db.Value.Float avg_qty, Mope_db.Value.Int n ->
        Alcotest.(check (float 1e-6)) "avg consistency"
          (float_of_int sum_qty /. float_of_int n)
          avg_qty
      | _ -> Alcotest.fail "row shape")
    r.Mope_db.Exec.rows

let test_linestatus_values () =
  let db, _ = Lazy.force tpch_db in
  let r =
    Mope_db.Database.query db "SELECT DISTINCT l_linestatus FROM lineitem ORDER BY l_linestatus"
  in
  let vals =
    List.map (function [| Mope_db.Value.Str s |] -> s | _ -> "?") r.Mope_db.Exec.rows
  in
  Alcotest.(check (list string)) "F and O" [ "F"; "O" ] vals

let () =
  Alcotest.run "workload"
    [ ( "datasets",
        [ Alcotest.test_case "shapes" `Quick test_dataset_shapes;
          Alcotest.test_case "domains" `Quick test_dataset_domains;
          Alcotest.test_case "skew" `Quick test_dataset_skew;
          Alcotest.test_case "padding" `Quick test_dataset_padding ] );
      ( "query_gen",
        [ QCheck_alcotest.to_alcotest test_query_lengths_valid;
          Alcotest.test_case "starts follow data" `Quick test_query_centers_follow_data;
          Alcotest.test_case "MC matches exact" `Slow test_start_distribution_mc_vs_exact;
          Alcotest.test_case "generate count" `Quick test_generate_count ] );
      ( "cost_experiment",
        [ Alcotest.test_case "uniform mode sane" `Slow test_cost_experiment_uniform_mode_sane;
          Alcotest.test_case "periodic cheaper" `Slow test_cost_experiment_periodic_cheaper;
          Alcotest.test_case "deterministic" `Quick test_cost_experiment_deterministic ] );
      ( "tpch",
        [ Alcotest.test_case "sizes" `Quick test_tpch_sizes;
          Alcotest.test_case "dates in window" `Quick test_tpch_dates_in_window;
          Alcotest.test_case "receipt after ship" `Quick test_tpch_receipt_after_ship;
          Alcotest.test_case "domain mapping" `Quick test_tpch_domain_mapping;
          Alcotest.test_case "Q6 selectivity" `Quick test_q6_selectivity;
          Alcotest.test_case "generator deterministic" `Quick test_tpch_deterministic ] );
      ( "tpch_queries",
        [ Alcotest.test_case "templates run" `Quick test_templates_parse_and_run;
          Alcotest.test_case "date ranges" `Quick test_template_date_ranges;
          Alcotest.test_case "start domains" `Quick test_template_start_domains;
          Alcotest.test_case "padded start distribution" `Quick
            test_template_start_distribution_padded;
          Alcotest.test_case "k covers instances" `Quick
            test_template_lengths_cover_ranges;
          Alcotest.test_case "Q1 runs and is consistent" `Quick
            test_q1_runs_and_is_consistent;
          Alcotest.test_case "linestatus values" `Quick test_linestatus_values ] ) ]

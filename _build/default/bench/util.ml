(* Shared output helpers for the benchmark harness. *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n-- %s --\n" title

let row fmt = Printf.printf fmt

let time_it f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let pp_seconds s =
  if s < 1.0 then Printf.sprintf "%.0f ms" (1000.0 *. s)
  else if s < 120.0 then Printf.sprintf "%.2f s" s
  else Printf.sprintf "%.1f min" (s /. 60.0)

let period_label = function
  | None -> "n/a"
  | Some rho -> string_of_int rho

(* A coarse ASCII sparkline of an array of non-negative counts. *)
let sparkline ?(width = 64) values =
  let n = Array.length values in
  if n = 0 then ""
  else begin
    let bucket = Array.make width 0.0 in
    Array.iteri
      (fun i v -> bucket.(i * width / n) <- bucket.(i * width / n) +. v)
      values;
    let top = Array.fold_left Float.max 0.0 bucket in
    let glyphs = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#' |] in
    String.init width (fun i ->
        if top <= 0.0 then ' '
        else begin
          let level =
            int_of_float (Float.round (bucket.(i) /. top *. 7.0))
          in
          glyphs.(Int.max 0 (Int.min 7 level))
        end)
  end

(* Ablations for the design choices called out in DESIGN.md. *)

open Mope_stats
open Mope_core
open Util

(* Exact HGD sampling vs the binomial approximation: accuracy (total
   variation against the true pmf) and speed. The OPE scheme requires the
   exact sampler for correctness of the sampled-OPF distribution; this shows
   what the shortcut would cost. *)
let hgd () =
  section "Ablation: exact hypergeometric sampling vs binomial approximation";
  let population = 3200 and successes = 200 and draws = 1600 in
  let lo, hi = Hypergeometric.support ~population ~successes ~draws in
  let n = 40_000 in
  let empirical sampler =
    let rng = Rng.create 5L in
    let counts = Array.make (hi - lo + 1) 0 in
    for _ = 1 to n do
      let x = sampler ~u:(Rng.float rng) in
      counts.(x - lo) <- counts.(x - lo) + 1
    done;
    counts
  in
  let tv counts =
    let acc = ref 0.0 in
    Array.iteri
      (fun i c ->
        let p = exp (Hypergeometric.log_pmf ~population ~successes ~draws (lo + i)) in
        acc := !acc +. Float.abs (p -. (float_of_int c /. float_of_int n)))
      counts;
    0.5 *. !acc
  in
  let exact_counts, exact_dt =
    time_it (fun () -> empirical (Hypergeometric.sample ~population ~successes ~draws))
  in
  let approx_counts, approx_dt =
    time_it (fun () ->
        empirical (Hypergeometric.sample_binomial_approx ~population ~successes ~draws))
  in
  row "%-22s %14s %14s\n" "sampler" "TV vs true pmf" "time (40k draws)";
  row "%-22s %14.4f %14s\n" "exact (centre-out)" (tv exact_counts) (pp_seconds exact_dt);
  row "%-22s %14.4f %14s\n" "binomial approx" (tv approx_counts) (pp_seconds approx_dt);
  row "(the approximation's bias would skew the sampled OPF and therefore the\n";
  row " scheme's leakage profile; the exact sampler is used everywhere)\n"

(* Geometric batching of fake draws (paper §5) vs the literal Bernoulli loop:
   both produce the same distribution; the geometric form does one RNG draw
   for the count instead of one per coin flip. *)
let geometric () =
  section "Ablation: Geom(alpha) fake-count draw vs literal Bernoulli loop";
  let q = Distributions.zipf ~size:2500 ~s:1.2 in
  let s = Scheduler.create ~m:2500 ~k:10 ~mode:Scheduler.Uniform ~q in
  let n = 3000 in
  let run driver seed =
    let rng = Rng.create seed in
    let fakes = ref 0 in
    let (), dt =
      time_it (fun () ->
          for _ = 1 to n do
            fakes := !fakes + List.length (driver s rng ~real:0) - 1
          done)
    in
    (float_of_int !fakes /. float_of_int n, dt)
  in
  let gm, gdt = run Scheduler.schedule 1L in
  let bm, bdt = run Scheduler.schedule_bernoulli 2L in
  row "%-22s %16s %14s\n" "driver" "mean fakes/real" "time";
  row "%-22s %16.1f %14s\n" "geometric (sec. 5)" gm (pp_seconds gdt);
  row "%-22s %16.1f %14s\n" "bernoulli loop" bm (pp_seconds bdt)

(* Multi-range merging in the server's planner: how many B+-tree descents a
   batched disjunction costs with and without interval merging. *)
let merging () =
  section "Ablation: merged vs unmerged multi-range index scans";
  let rng = Rng.create 9L in
  let raw =
    List.init 200 (fun _ ->
        let lo = Rng.int rng 10_000 in
        (lo, lo + 25))
  in
  let merged = Mope_db.Ranges.normalize raw in
  row "200 random 26-wide ranges over a 10k domain:\n";
  row "  unmerged index descents: %d\n" (List.length raw);
  row "  merged descents:         %d\n" (List.length (Mope_db.Ranges.intervals merged));
  row "  covered values:          %d (duplicates eliminated: %d)\n"
    (Mope_db.Ranges.cardinal merged)
    ((200 * 26) - Mope_db.Ranges.cardinal merged)



(* Crossover (paper §4 future work): freezing the learned estimate into the
   static scheduler removes the per-query estimate rebuilds while keeping
   the same fake-query rate. *)
let crossover () =
  section "Ablation: adaptive crossover (freeze the learned distribution)";
  let m = 2500 and k = 10 in
  let q = Distributions.zipf ~size:m ~s:1.1 in
  let rng = Rng.create 3L in
  (* Learn from 4000 queries. *)
  let adaptive = Adaptive.create ~m ~k ~mode:Adaptive.Uniform in
  for _ = 1 to 4000 do
    Adaptive.observe adaptive (Histogram.sample q ~u:(Rng.float rng))
  done;
  ignore (Adaptive.stability adaptive ~window:1000);
  for _ = 1 to 1500 do
    Adaptive.observe adaptive (Histogram.sample q ~u:(Rng.float rng))
  done;
  let ready = Adaptive.crossover_ready adaptive ~window:1000 ~epsilon:0.15 in
  row "crossover_ready after 5500 observations (window 1000, eps 0.15): %b\n" ready;
  let frozen = Adaptive.freeze adaptive in
  (* Cost of serving 500 more queries: keep learning vs frozen. *)
  let adaptive_run () =
    for _ = 1 to 500 do
      Adaptive.observe adaptive (Histogram.sample q ~u:(Rng.float rng));
      let served = ref false in
      while not !served do
        match Adaptive.step adaptive rng with
        | Some (Adaptive.Real _) -> served := true
        | Some _ -> ()
        | None -> served := true
      done
    done
  in
  let frozen_run () =
    for _ = 1 to 500 do
      let real = Histogram.sample q ~u:(Rng.float rng) in
      ignore (Scheduler.schedule frozen rng ~real)
    done
  in
  let (), adaptive_dt = time_it adaptive_run in
  let (), frozen_dt = time_it frozen_run in
  row "%-28s %14s\n" "mode" "time (500 queries)";
  row "%-28s %14s\n" "keep learning (adaptive)" (pp_seconds adaptive_dt);
  row "%-28s %14s\n" "frozen static scheduler" (pp_seconds frozen_dt);
  row "alpha: adaptive %.4f vs frozen %.4f (same estimate)\n"
    (Adaptive.alpha adaptive) (Scheduler.alpha frozen)


(* DET join keys: why only (near-unique) keys are DET-encrypted. Frequency
   analysis recovers skewed DET columns almost entirely; high-entropy keys
   resist. *)
let det_leakage () =
  section "Ablation: frequency analysis against DET columns";
  row "%-28s %12s %12s\n" "column" "occurrences" "distinct";
  let run label ~domain ~zipf_s =
    let out =
      Mope_attack.Frequency.experiment ~domain ~zipf_s ~n_rows:3000 ~trials:8
        ~seed:11L
    in
    row "%-28s %11.0f%% %11.0f%%\n" label
      (100.0 *. out.Mope_attack.Frequency.recovered)
      (100.0 *. out.Mope_attack.Frequency.distinct_recovered)
  in
  run "zipf(1.3) over 100 values" ~domain:100 ~zipf_s:1.3;
  run "zipf(0.8) over 1000 values" ~domain:1000 ~zipf_s:0.8;
  run "uniform over 1000 values" ~domain:1000 ~zipf_s:0.0;
  row "(recovery = adversary with the true plaintext frequencies; the\n";
  row " prototype DET-encrypts only near-unique join keys for this reason)\n"

let all () =
  hgd ();
  geometric ();
  merging ();
  crossover ();
  det_leakage ()

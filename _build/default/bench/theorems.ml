(* Empirical checks of the §7 security theorems (the paper's analysis has no
   numbered tables; these rows are the quantitative counterpart of
   Theorems 3, 4 and 5 plus the Fig.-1 baseline). *)

open Mope_core
open Mope_attack
open Util

let config trials = { Wow.default with Wow.trials }

let theorem3 trials =
  section "Theorem 3: WOW*-L of MOPE+QueryU — location is perfectly hidden";
  let cfg = config trials in
  row "M=%d n=%d w=%d q=%d k=%d, %d trials, ML location adversary\n" cfg.Wow.m
    cfg.Wow.n cfg.Wow.w cfg.Wow.q cfg.Wow.k trials;
  let naive = Wow.location_success cfg Wow.Naive in
  let uniform = Wow.location_success cfg (Wow.Mixed Scheduler.Uniform) in
  row "%-24s %10s %10s\n" "mode" "success" "bound";
  row "%-24s %10.3f %10s\n" "naive MOPE" naive "(none)";
  row "%-24s %10.3f %10.3f\n" "MOPE + QueryU" uniform
    (Wow.location_bound cfg (Wow.Mixed Scheduler.Uniform));
  row "%-24s %10.3f\n" "random-guess baseline" (Wow.random_guess cfg)

let theorem4 trials =
  section "Theorem 4: WOW*-D — distances leak under every mode";
  let cfg = config trials in
  let naive = Wow.distance_success cfg Wow.Naive in
  let uniform = Wow.distance_success cfg (Wow.Mixed Scheduler.Uniform) in
  row "%-24s %10s\n" "mode" "success";
  row "%-24s %10.3f\n" "naive MOPE" naive;
  row "%-24s %10.3f\n" "MOPE + QueryU" uniform;
  row "%-24s %10.3f\n" "random-guess baseline" (Wow.random_guess cfg);
  row "Theorem-4 upper bound 8w/sqrt(M-qk-1): %.3f\n" (Wow.distance_bound cfg)

let theorem5 trials =
  section "Theorem 5: QueryP leaks exactly the offset's low-order bits";
  let m = 100 and k = 5 and rho = 20 in
  let q = Mope_stats.Distributions.zipf ~size:m ~s:1.2 in
  let out =
    Periodic_shift.run ~m ~k ~rho ~n_queries:400 ~trials ~seed:7L ~q
  in
  row "M=%d rho=%d, ML shift-recovery adversary over %d trials\n" m rho trials;
  row "recovers j mod rho:   %.2f   (log2 rho = %.1f low bits leak)\n"
    out.Periodic_shift.class_success
    (log (float_of_int rho) /. log 2.0);
  row "recovers j exactly:   %.2f   (rho/M = %.2f: high bits stay hidden)\n"
    out.Periodic_shift.full_success
    (float_of_int rho /. float_of_int m);
  let cfg = config trials in
  let p_success = Wow.location_success cfg (Wow.Mixed (Scheduler.Periodic 10)) in
  row "WOW*-L under QueryP[10]: %.3f (Theorem-5 bound rho*w/M = %.3f)\n" p_success
    (Wow.location_bound cfg (Wow.Mixed (Scheduler.Periodic 10)))

let theorems12 trials =
  section "Theorems 1-2 baseline: what the encrypted database alone leaks";
  let cfg = { Wow_baseline.default with Wow_baseline.trials } in
  let rows = Wow_baseline.run cfg in
  row "(no query oracle; rank-inversion location adversary, scale distance adversary)\n";
  row "%-8s %12s %12s\n" "scheme" "location" "distance";
  List.iter
    (fun r ->
      row "%-8s %12.3f %12.3f\n" r.Wow_baseline.scheme r.Wow_baseline.location
        r.Wow_baseline.distance)
    rows;
  row "random-guess location baseline: %.3f\n"
    (Wow_baseline.location_random_guess cfg);
  row "Theorem 1: MOPE location collapses to w/M; Theorem 2: distance leaks\n";
  row "under both schemes — matching the rows above.\n"

let sorting trials =
  section "Dense-column sorting attack (the paper's motivating leak, sec. 1)";
  let out = Mope_attack.Sorting_attack.experiment ~m:400 ~trials:(Int.max 5 (trials / 6)) ~seed:21L in
  row "column covering its whole domain (M=400, e.g. a date column):\n";
  row "%-8s %24s\n" "scheme" "plaintexts recovered";
  row "%-8s %23.1f%%\n" "OPE" (100.0 *. out.Mope_attack.Sorting_attack.ope_recovery);
  row "%-8s %23.1f%%\n" "MOPE" (100.0 *. out.Mope_attack.Sorting_attack.mope_recovery);
  row "(sorting distinct ciphertexts decrypts a dense OPE column outright;\n";
  row " the modular offset leaves M equally likely rotations)\n"

let all trials =
  sorting trials;
  theorems12 trials;
  theorem3 trials;
  theorem4 trials;
  theorem5 trials

bench/ablation.ml: Adaptive Array Distributions Float Histogram Hypergeometric List Mope_attack Mope_core Mope_db Mope_stats Rng Scheduler Util

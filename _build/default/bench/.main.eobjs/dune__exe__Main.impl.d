bench/main.ml: Ablation Arg Figures List Micro Printf Theorems Unix Util

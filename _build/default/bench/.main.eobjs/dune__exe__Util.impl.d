bench/util.ml: Array Float Int Printf String Unix

bench/micro.ml: Analyze Bechamel Benchmark Hashtbl Instance Lazy List Measure Mope_core Mope_crypto Mope_db Mope_ope Mope_stats Staged String Test Time Toolkit Util

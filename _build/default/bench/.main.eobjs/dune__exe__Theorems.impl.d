bench/theorems.ml: Int List Mope_attack Mope_core Mope_stats Periodic_shift Scheduler Util Wow Wow_baseline

bench/main.mli:

(* Benchmark harness entry point.

   `dune exec bench/main.exe` regenerates every data figure of the paper plus
   the empirical theorem checks and the DESIGN.md ablations.

   Options:
     --figure N     run only figure N (1-3, 5-16)
     --theorems     run only the theorem checks
     --micro        run only the bechamel micro-benchmarks
     --ablation     run only the ablations
     --full         larger workloads (slower, tighter estimates)
     --list         list available experiments *)

let figures : (int * (Figures.scale -> unit)) list =
  [ (1, Figures.fig1); (2, Figures.fig2); (3, Figures.fig3); (5, Figures.fig5);
    (6, Figures.fig6); (7, Figures.fig7); (8, Figures.fig8); (9, Figures.fig9);
    (10, Figures.fig10); (11, Figures.fig11); (12, Figures.fig12);
    (13, Figures.fig13); (14, Figures.fig14); (15, Figures.fig15);
    (16, Figures.fig16) ]

let () =
  let figure = ref 0 in
  let theorems_only = ref false in
  let micro_only = ref false in
  let ablation_only = ref false in
  let full = ref false in
  let list_only = ref false in
  let spec =
    [ ("--figure", Arg.Set_int figure, "N  run only figure N");
      ("--theorems", Arg.Set theorems_only, " run only the theorem checks");
      ("--micro", Arg.Set micro_only, " run only the micro-benchmarks");
      ("--ablation", Arg.Set ablation_only, " run only the ablations");
      ("--full", Arg.Set full, " larger workloads");
      ("--list", Arg.Set list_only, " list experiments") ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "bench/main.exe [--figure N | --theorems | --micro | --ablation] [--full]";
  let scale = if !full then Figures.full_scale else Figures.quick_scale in
  if !list_only then begin
    List.iter (fun (n, _) -> Printf.printf "figure %d\n" n) figures;
    print_endline "theorems";
    print_endline "micro";
    print_endline "ablation"
  end
  else if !figure <> 0 then begin
    match List.assoc_opt !figure figures with
    | Some f -> f scale
    | None ->
      Printf.eprintf "no such figure: %d\n" !figure;
      exit 1
  end
  else if !theorems_only then Theorems.all scale.Figures.trials
  else if !micro_only then Micro.run ()
  else if !ablation_only then Ablation.all ()
  else begin
    let t0 = Unix.gettimeofday () in
    Printf.printf
      "MOPE reproduction benchmark harness (%s scale)\n\
       Regenerating every data figure of 'Modular Order-Preserving \
       Encryption, Revisited' (SIGMOD'15).\n"
      (if !full then "full" else "quick");
    List.iter (fun (_, f) -> f scale) figures;
    Theorems.all scale.Figures.trials;
    Ablation.all ();
    Micro.run ();
    Printf.printf "\ntotal harness time: %s\n"
      (Util.pp_seconds (Unix.gettimeofday () -. t0))
  end

(* Reproduction of every data figure of the paper's evaluation (§6).
   Each [figN] prints the same series the paper plots; see EXPERIMENTS.md for
   the paper-vs-measured comparison. *)

open Mope_stats
open Mope_ope
open Mope_core
open Mope_workload
open Mope_system
open Util

type scale = {
  cost_queries : int;   (* real client queries per cost-experiment config *)
  cost_records : int;   (* synthetic table size *)
  cost_samples : int;   (* Monte-Carlo samples for estimating Q *)
  tpch_sf : float;      (* scale factor for the end-to-end system runs *)
  tpch_queries : int;   (* client queries per Fig. 13/15 data point *)
  trials : int;         (* trials for attack-style experiments *)
}

let quick_scale =
  { cost_queries = 400; cost_records = 30_000; cost_samples = 40_000;
    tpch_sf = 0.002; tpch_queries = 12; trials = 30 }

let full_scale =
  { cost_queries = 1500; cost_records = 100_000; cost_samples = 150_000;
    tpch_sf = 0.005; tpch_queries = 40; trials = 100 }

(* ------------------------------------------------------------------ *)
(* Figure 1: the gap attack on naive MOPE *)

let fig1 scale =
  section "Figure 1: gap in the naive query distribution reveals the offset";
  let m = 100 and k = 10 and offset = 20 in
  let mope =
    Mope.create_with_offset ~key:"fig1" ~domain:m ~range:(Ope.recommended_range m)
      ~offset ()
  in
  (* All valid (non-wrapping) length-k queries, as in the paper's example. *)
  let queries =
    List.init (m - k + 1) (fun lo -> Query_model.make ~m ~lo ~hi:(lo + k - 1))
  in
  let stream = Make_queries.strip (Make_queries.run_naive ~mope ~k ~queries) in
  (* Plot the shifted-plaintext histogram of observed query starts (what the
     adversary reconstructs up to OPE rank inversion). *)
  let hist = Array.make m 0.0 in
  List.iter
    (fun q -> begin
       let p = Mope.decrypt mope q.Make_queries.c_lo in
       let shifted = Modular.add ~m p offset in
       hist.(shifted) <- hist.(shifted) +. 1.0
     end)
    stream;
  row "observed (shifted) query starts, domain 0..99:\n  |%s|\n" (sparkline ~width:50 hist);
  let guess, success = Mope_attack.Gap_attack.run ~mope ~stream in
  row "largest empty ciphertext arc: %d cells; bet on next start: %s\n"
    guess.Mope_attack.Gap_attack.arc_len
    (if success then "correct (offset pinned to j=20)" else "incorrect");
  let naive =
    Mope_attack.Gap_attack.success_rate ~m ~k ~n_queries:400 ~trials:scale.trials
      ~seed:1L ~fake_mix:None
  in
  row "attack success over %d fresh keys (naive, 400 queries): %.2f\n" scale.trials naive

(* The valid-start uniform client distribution used in Figs. 1-3. *)
let valid_uniform ~m ~k =
  let pmf = Array.init m (fun i -> if i <= m - k then 1.0 else 0.0) in
  let total = Array.fold_left ( +. ) 0.0 pmf in
  Histogram.of_pmf (Array.map (fun p -> p /. total) pmf)

(* ------------------------------------------------------------------ *)
(* Figure 2: perceived distribution under QueryU *)

let fig2 scale =
  section "Figure 2: QueryU hides the gap (perceived distribution is uniform)";
  let m = 100 and k = 10 and offset = 20 in
  let mope =
    Mope.create_with_offset ~key:"fig2" ~domain:m ~range:(Ope.recommended_range m)
      ~offset ()
  in
  let q = valid_uniform ~m ~k in
  let scheduler = Scheduler.create ~m ~k ~mode:Scheduler.Uniform ~q in
  let rng = Rng.create 2L in
  let queries =
    List.init 2000 (fun _ ->
        let lo = Histogram.sample q ~u:(Rng.float rng) in
        Query_model.make ~m ~lo ~hi:(lo + k - 1))
  in
  let stream = Make_queries.strip (Make_queries.run ~mope ~scheduler ~rng ~queries) in
  let hist = Array.make m 0.0 in
  let counts = Array.make m 0 in
  List.iter
    (fun eq -> begin
       let p = Mope.decrypt mope eq.Make_queries.c_lo in
       let shifted = Modular.add ~m p offset in
       hist.(shifted) <- hist.(shifted) +. 1.0;
       counts.(shifted) <- counts.(shifted) + 1
     end)
    stream;
  row "perceived (shifted) query starts with fakes mixed in:\n  |%s|\n"
    (sparkline ~width:50 hist);
  let chi = Summary.chi_square_uniform counts in
  row "chi-square vs uniform (99 dof, p=0.001 critical 148.2): %.1f\n" chi;
  row "expected fake queries per real query: %.2f (alpha=%.3f)\n"
    (Scheduler.expected_fakes_per_real scheduler)
    (Scheduler.alpha scheduler);
  let mixed =
    Mope_attack.Gap_attack.success_rate ~m ~k ~n_queries:400 ~trials:scale.trials
      ~seed:1L ~fake_mix:(Some scheduler)
  in
  row "gap-attack success under QueryU: %.2f (vs naive in Fig. 1)\n" mixed

(* ------------------------------------------------------------------ *)
(* Figure 3: perceived distribution under QueryP *)

let fig3 _scale =
  section "Figure 3: QueryP[rho] makes the perceived distribution rho-periodic";
  let m = 100 and k = 10 and rho = 20 in
  (* A skewed client distribution so the periodic structure is non-trivial. *)
  let q =
    let pmf =
      Array.init m (fun i ->
          if i > m - k then 0.0
          else begin
            let z = (float_of_int i -. 35.0) /. 12.0 in
            0.1 +. exp (-0.5 *. z *. z)
          end)
    in
    let total = Array.fold_left ( +. ) 0.0 pmf in
    Histogram.of_pmf (Array.map (fun p -> p /. total) pmf)
  in
  let scheduler = Scheduler.create ~m ~k ~mode:(Scheduler.Periodic rho) ~q in
  let rng = Rng.create 3L in
  let hist = Array.make m 0.0 in
  for _ = 1 to 4000 do
    let real = Histogram.sample q ~u:(Rng.float rng) in
    List.iter
      (fun start -> hist.(start) <- hist.(start) +. 1.0)
      (Scheduler.schedule scheduler rng ~real)
  done;
  row "perceived query starts (rho = %d):\n  |%s|\n" rho (sparkline ~width:50 hist);
  let target = Scheduler.perceived scheduler in
  row "target is exactly rho-periodic: %b\n"
    (Histogram.is_periodic target ~rho ~eps:1e-9);
  row "expected fakes per real: QueryP %.2f vs QueryU %.2f\n"
    (Scheduler.expected_fakes_per_real scheduler)
    (Scheduler.expected_fakes_per_real
       (Scheduler.create ~m ~k ~mode:Scheduler.Uniform ~q))

(* ------------------------------------------------------------------ *)
(* Figures 5-7: Bandwidth & Requests vs period size *)

let cost_config scale ~k ~sigma ~mode =
  { Cost_experiment.k; sigma;
    mode;
    n_queries = scale.cost_queries;
    n_records = scale.cost_records;
    q_samples = scale.cost_samples;
    seed = 42L }

let run_period_figure scale ~data ~sigmas ~periods ~k =
  row "%-10s %-6s %12s %12s %10s\n" "sigma" "period" "Bandwidth" "Requests" "alpha";
  List.iter
    (fun sigma ->
      List.iter
        (fun period ->
          let mode =
            match period with
            | None -> Scheduler.Uniform
            | Some rho -> Scheduler.Periodic rho
          in
          let out = Cost_experiment.run ~data (cost_config scale ~k ~sigma ~mode) in
          row "%-10.0f %-6s %12.2f %12.2f %10.4f\n" sigma (period_label period)
            out.Cost_experiment.bandwidth out.Cost_experiment.requests
            out.Cost_experiment.alpha)
        periods)
    sigmas

let fig5 scale =
  section "Figure 5: Adult — costs vs period (k=10)";
  run_period_figure scale ~data:(Datasets.adult ()) ~sigmas:[ 5.0; 10.0 ]
    ~periods:[ None; Some 5; Some 10 ] ~k:10

let fig6 scale =
  section "Figure 6: Covertype — costs vs period (k=10)";
  run_period_figure scale ~data:(Datasets.covertype ()) ~sigmas:[ 5.0; 10.0 ]
    ~periods:[ None; Some 25; Some 50; Some 100; Some 200 ] ~k:10

let fig7 scale =
  section "Figure 7: SanFran — costs vs period (k=10)";
  run_period_figure scale ~data:(Datasets.sanfran ()) ~sigmas:[ 5.0; 10.0; 25.0 ]
    ~periods:[ None; Some 25; Some 50; Some 100; Some 200; Some 400 ] ~k:10

(* ------------------------------------------------------------------ *)
(* Figures 8-12: Bandwidth & Requests vs fixed query length k (rho = 25) *)

let run_length_figure scale ~data ~sigmas ~ks =
  row "%-10s %-6s %12s %12s\n" "sigma" "k" "Bandwidth" "Requests";
  List.iter
    (fun sigma ->
      List.iter
        (fun k ->
          let out =
            Cost_experiment.run ~data
              (cost_config scale ~k ~sigma ~mode:(Scheduler.Periodic 25))
          in
          row "%-10.0f %-6d %12.2f %12.2f\n" sigma k out.Cost_experiment.bandwidth
            out.Cost_experiment.requests)
        ks)
    sigmas

let fig8 scale =
  section "Figure 8: Uniform — costs vs k (rho=25)";
  run_length_figure scale ~data:(Datasets.uniform ()) ~sigmas:[ 5.0; 10.0; 25.0 ]
    ~ks:[ 5; 10; 25; 50; 100; 200; 400; 800 ]

let fig9 scale =
  section "Figure 9: Zipf — costs vs k (rho=25)";
  run_length_figure scale ~data:(Datasets.zipf ()) ~sigmas:[ 5.0; 10.0; 25.0 ]
    ~ks:[ 5; 10; 25; 50; 100; 200; 400; 800 ]

let fig10 scale =
  section "Figure 10: Adult — costs vs k (rho=25)";
  run_length_figure scale ~data:(Datasets.adult ()) ~sigmas:[ 5.0; 10.0 ]
    ~ks:[ 5; 10; 25 ]

let fig11 scale =
  section "Figure 11: Covertype — costs vs k (rho=25)";
  run_length_figure scale ~data:(Datasets.covertype ()) ~sigmas:[ 5.0; 10.0 ]
    ~ks:[ 5; 10; 25; 50; 100; 200; 400 ]

let fig12 scale =
  section "Figure 12: SanFran — costs vs k (rho=25)";
  run_length_figure scale ~data:(Datasets.sanfran ()) ~sigmas:[ 5.0; 10.0; 25.0 ]
    ~ks:[ 5; 10; 25; 50; 100; 200; 400; 800 ]

(* ------------------------------------------------------------------ *)
(* Figures 13-15: the end-to-end TPC-H system *)

let tpch_periods = [ None; Some 15; Some 30; Some 61; Some 92; Some 183; Some 366 ]

let testbed = ref None

let get_testbed scale =
  match !testbed with
  | Some tb -> tb
  | None ->
    let tb, dt = time_it (fun () -> Testbed.load ~sf:scale.tpch_sf ~seed:7L ()) in
    let sizes = Testbed.sizes tb in
    row "[setup] TPC-H at SF %.3f: %d orders, %d lineitems, %d parts (%s)\n"
      scale.tpch_sf sizes.Tpch.orders sizes.Tpch.lineitems sizes.Tpch.parts
      (pp_seconds dt);
    testbed := Some tb;
    tb

let run_template_instances tb proxy instances =
  List.iter (fun inst -> ignore (Testbed.run_encrypted proxy inst)) instances;
  ignore tb

let fig13 scale =
  section "Figure 13: runtime of encrypted TPC-H Q6/Q14 vs period size";
  let tb = get_testbed scale in
  let rng = Rng.create 19L in
  row "(runtimes for %d client queries per point; paper used 1000 at SF 1 —\n"
    scale.tpch_queries;
  row " shapes, not absolute times, are the comparison target)\n\n";
  row "%-5s %-8s %14s %10s %10s %12s\n" "tmpl" "period" "runtime" "requests"
    "fakes" "rows-fetched";
  List.iter
    (fun template ->
      let instances =
        List.init scale.tpch_queries (fun _ ->
            Tpch_queries.random_instance rng template)
      in
      (* Unencrypted baseline. *)
      let (), base_dt =
        time_it (fun () -> List.iter (fun i -> ignore (Testbed.run_plain tb i)) instances)
      in
      row "%-5s %-8s %14s %10s %10s %12s\n"
        (Tpch_queries.template_name template)
        "plain" (pp_seconds base_dt) "-" "-" "-";
      List.iter
        (fun period ->
          let proxy = Testbed.proxy tb ~template ~rho:period ~batch_size:1 ~seed:5L () in
          let (), dt = time_it (fun () -> run_template_instances tb proxy instances) in
          let c = Proxy.counters proxy in
          row "%-5s %-8s %14s %10d %10d %12d\n"
            (Tpch_queries.template_name template)
            (period_label period) (pp_seconds dt) c.Proxy.server_requests
            c.Proxy.fake_queries c.Proxy.rows_fetched)
        tpch_periods;
      (* The paper's strawman: return the whole table for every query
         ("perfect hiding"). In-memory scans make its *time* cheap at this
         scale, so the scale-free comparison is rows moved per query. *)
      let enc = Testbed.encrypted_for tb ~rho:None in
      let server = Encrypted_db.server enc in
      let table_rows =
        Mope_db.Table.length (Mope_db.Database.table_exn server "lineitem")
      in
      let (), one_scan =
        time_it (fun () ->
            ignore (Mope_db.Database.query server "SELECT * FROM lineitem"))
      in
      row "%-5s %-8s %14s %10s %10s %12d  (fetch-everything strawman)\n"
        (Tpch_queries.template_name template)
        "all"
        (pp_seconds (one_scan *. float_of_int scale.tpch_queries))
        "-" "-"
        (table_rows * scale.tpch_queries);
      row
        "      (rows/query: strawman %d; a period-P run above divides its \
         rows-fetched by %d. In-memory scans hide the transfer cost the \
         paper's 660-800x factors measure; rows moved is the scale-free \
         comparison.)\n"
        table_rows scale.tpch_queries)
    [ Tpch_queries.Q6; Tpch_queries.Q14 ]

let fig14 scale =
  section "Figure 14: Q4 — Requests factor vs period size (no execution)";
  let m_of rho = Testbed.padded_domain ~rho in
  let rng = Rng.create 23L in
  row "%-8s %12s %16s\n" "period" "Requests" "expected-fakes";
  List.iter
    (fun period ->
      let m = m_of period in
      let q = Tpch_queries.start_distribution ~domain:m Tpch_queries.Q4 in
      let mode =
        match period with None -> Scheduler.Uniform | Some rho -> Scheduler.Periodic rho
      in
      let scheduler =
        Scheduler.create ~m ~k:(Tpch_queries.fixed_length Tpch_queries.Q4) ~mode ~q
      in
      (* Simulate the request stream the proxy would issue. *)
      let n = Int.max 200 (scale.tpch_queries * 10) in
      let requests = ref 0 in
      for _ = 1 to n do
        let real = Histogram.sample q ~u:(Rng.float rng) in
        requests := !requests + List.length (Scheduler.schedule scheduler rng ~real)
      done;
      row "%-8s %12.2f %16.2f\n" (period_label period)
        (float_of_int !requests /. float_of_int n)
        (Scheduler.expected_fakes_per_real scheduler))
    tpch_periods

let fig15 scale =
  section "Figure 15: multi-range batching — QueryU runtime vs batch size";
  let tb = get_testbed scale in
  let rng = Rng.create 29L in
  row "%-5s %-8s %14s %10s %12s\n" "tmpl" "batch" "runtime" "requests" "rows-fetched";
  List.iter
    (fun template ->
      let instances =
        List.init scale.tpch_queries (fun _ ->
            Tpch_queries.random_instance rng template)
      in
      List.iter
        (fun batch_size ->
          let proxy = Testbed.proxy tb ~template ~rho:None ~batch_size ~seed:11L () in
          let (), dt = time_it (fun () -> run_template_instances tb proxy instances) in
          let c = Proxy.counters proxy in
          row "%-5s %-8d %14s %10d %12d\n"
            (Tpch_queries.template_name template)
            batch_size (pp_seconds dt) c.Proxy.server_requests c.Proxy.rows_fetched)
        [ 1; 100; 250; 500; 750; 1000 ])
    [ Tpch_queries.Q6; Tpch_queries.Q14 ]

(* ------------------------------------------------------------------ *)
(* Figure 16: AdaptiveQueryU convergence *)

let adaptive_rounds ~m ~k ~next_start ~rounds ~seed =
  let adaptive = Adaptive.create ~m ~k ~mode:Adaptive.Uniform in
  let rng = Rng.create seed in
  let fake_counts = ref [] in
  let fakes = ref 0 and reals = ref 0 and done_rounds = ref 0 in
  let steps = ref 0 in
  (* Interleave: feed one incoming client query, then execute one query (the
     paper's AdaptiveQueryU issues a single query per buffer update); the
     client stream never dries up, as in a live deployment. *)
  while !done_rounds < rounds && !steps < 30_000_000 do
    Adaptive.observe adaptive (next_start ());
    (match Adaptive.step adaptive rng with
    | Some (Adaptive.Real _) ->
      incr reals;
      if !reals mod 10 = 0 then begin
        fake_counts := !fakes :: !fake_counts;
        fakes := 0;
        incr done_rounds
      end
    | Some (Adaptive.Fake _ | Adaptive.Replay _) -> incr fakes
    | None -> ());
    incr steps
  done;
  List.rev !fake_counts

let fig16 scale =
  section "Figure 16: AdaptiveQueryU — fake queries per round of 10 real queries";
  (* (a) SanFran with sigma = 10, k = 10. *)
  let sanfran = Datasets.sanfran () in
  let m = sanfran.Datasets.domain and k = 10 in
  let rng = Rng.create 31L in
  let rounds_a = Int.max 60 scale.trials in
  let queue = Queue.create () in
  let next_start () =
    if Queue.is_empty queue then
      List.iter
        (fun s -> Queue.add s queue)
        (Query_model.transform ~m ~k
           (Query_gen.sample_query rng ~data:sanfran.Datasets.distribution
              ~sigma:10.0));
    Queue.pop queue
  in
  let series_a = adaptive_rounds ~m ~k ~next_start ~rounds:rounds_a ~seed:1L in
  subsection "(a) SanFran sigma=10";
  row "round: fakes per 10 reals (first 10 rounds, then every 10th)\n";
  List.iteri
    (fun i fakes ->
      if i < 10 || (i + 1) mod 10 = 0 then row "  round %3d: %6d\n" (i + 1) fakes)
    series_a;
  (* (b) TPC-H Q14 start distribution: 60 monthly starts. *)
  let m = Tpch.date_domain and k = Tpch_queries.fixed_length Tpch_queries.Q14 in
  let q14 = Tpch_queries.start_distribution Tpch_queries.Q14 in
  let rounds_b = Int.max 60 scale.trials in
  let rng = Rng.create 37L in
  let next_start () = Histogram.sample q14 ~u:(Rng.float rng) in
  let series_b = adaptive_rounds ~m ~k ~next_start ~rounds:rounds_b ~seed:2L in
  subsection "(b) TPC-H Q14";
  List.iteri
    (fun i fakes ->
      if i < 10 || (i + 1) mod 10 = 0 then row "  round %3d: %6d\n" (i + 1) fakes)
    series_b;
  (* Steady-state references for both workloads: what the non-adaptive
     scheduler with the true Q would cost per 10 real queries. *)
  let steady ~m ~k ~q =
    10.0
    *. Scheduler.expected_fakes_per_real
         (Scheduler.create ~m ~k ~mode:Scheduler.Uniform ~q)
  in
  let sf_q =
    Query_gen.start_distribution (Rng.create 41L)
      ~data:sanfran.Datasets.distribution ~sigma:10.0 ~k:10 ~samples:100_000
  in
  row "steady state (known Q): SanFran %.0f, Q14 %.0f fakes per 10 reals\n"
    (steady ~m:sanfran.Datasets.domain ~k:10 ~q:sf_q)
    (steady ~m ~k ~q:q14);
  (* Convergence check: late rounds should need far fewer fakes. *)
  let avg l = Summary.mean (Array.of_list (List.map float_of_int l)) in
  let head l = List.filteri (fun i _ -> i < 5) l in
  let tail l =
    let n = List.length l in
    List.filteri (fun i _ -> i >= n - 5) l
  in
  row "\nconvergence: SanFran first-5 avg %.0f -> last-5 avg %.0f; Q14 %.0f -> %.0f\n"
    (avg (head series_a)) (avg (tail series_a))
    (avg (head series_b)) (avg (tail series_b))

let () =
  (* Craft a Query request whose sql length field is max_int *)
  let buf = Buffer.create 32 in
  Buffer.add_char buf '\x02';          (* version *)
  Buffer.add_char buf '\x02';          (* tag_query *)
  (* 8-byte big-endian max_int *)
  let v = Int64.of_int max_int in
  for byte = 0 to 7 do
    let shift = 8 * (7 - byte) in
    Buffer.add_char buf (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v shift) 0xFFL)))
  done;
  let payload = Buffer.contents buf in
  (match Mope_net.Wire.decode_request payload with
   | _ -> print_endline "decoded?!"
   | exception Mope_net.Wire.Protocol_error m -> Printf.printf "Protocol_error: %s\n" m
   | exception e -> Printf.printf "ESCAPED: %s\n" (Printexc.to_string e))
